package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/service"
)

// get issues one GET through the net from `from` to `to` and returns the
// response body (or the transport error).
func get(t *testing.T, net *LoopNet, from, to, path string) ([]byte, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://"+to+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := net.Client(from).Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TestLoopNetOneWayPartition: cutting a→b fails a's requests to b outright,
// while b's requests to a are *delivered* — the handler runs, its side effects
// land — but the response dies crossing the severed reverse path. That
// asymmetry (request delivered, ack lost) is the fault symmetric partition
// models cannot express.
func TestLoopNetOneWayPartition(t *testing.T) {
	net := NewLoopNet()
	var hits atomic.Int64
	net.Register("a", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("from-a"))
	}))
	net.Register("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("from-b"))
	}))

	net.PartitionOneWay("a", "b")

	if _, err := get(t, net, "a", "b", "/x"); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("a→b across the cut: err %v, want partition", err)
	}
	before := hits.Load()
	_, err := get(t, net, "b", "a", "/x")
	if err == nil || !strings.Contains(err.Error(), "response lost") {
		t.Fatalf("b→a with severed reverse path: err %v, want ack-lost", err)
	}
	if hits.Load() != before+1 {
		t.Fatal("ack-lost request did not reach the handler (side effects must still happen)")
	}

	net.Heal("a", "b")
	if body, err := get(t, net, "a", "b", "/x"); err != nil || string(body) != "from-b" {
		t.Fatalf("healed a→b: body %q err %v", body, err)
	}
}

// TestLoopNetFlakeDeterministic: the same (rate, seed) produces the same
// drop pattern on two independent networks, and rate 0 clears the flake.
func TestLoopNetFlakeDeterministic(t *testing.T) {
	pattern := func() []bool {
		net := NewLoopNet()
		net.Register("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok"))
		}))
		net.Flake("a", "b", 0.5, 77)
		var out []bool
		for i := 0; i < 40; i++ {
			_, err := get(t, net, "a", "b", "/x")
			out = append(out, err == nil)
		}
		return out
	}
	p1, p2 := pattern(), pattern()
	if fmt.Sprint(p1) != fmt.Sprint(p2) {
		t.Fatalf("same flake seed produced different drop patterns:\n%v\n%v", p1, p2)
	}
	dropped := 0
	for _, ok := range p1 {
		if !ok {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(p1) {
		t.Fatalf("flake at rate 0.5 dropped %d/%d requests", dropped, len(p1))
	}

	net := NewLoopNet()
	net.Register("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) }))
	net.Flake("a", "b", 0.9, 77)
	net.Flake("a", "b", 0, 77) // rate 0 clears
	for i := 0; i < 20; i++ {
		if _, err := get(t, net, "a", "b", "/x"); err != nil {
			t.Fatalf("cleared flake still dropping: %v", err)
		}
	}
}

// TestLoopNetCorruptResponsesDetected: with response corruption at rate 1,
// every body is damaged in exactly one bit, headers (and thus the checksum
// header) survive intact, and verifySum flags every response as a typed
// corruption. Same seed → same damaged bytes.
func TestLoopNetCorruptResponsesDetected(t *testing.T) {
	payload := []byte(`{"answer":42,"padding":"xxxxxxxxxxxxxxxx"}`)
	run := func() [][]byte {
		net := NewLoopNet()
		net.Register("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			setSum(w.Header(), payload)
			w.Write(payload)
		}))
		net.CorruptResponses("b", "a", 1.0, 99)
		var bodies [][]byte
		for i := 0; i < 8; i++ {
			req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://b/x", nil)
			resp, err := net.Client("a").Do(req)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if bytes.Equal(body, payload) {
				t.Fatalf("request %d: corruption at rate 1 left the body intact", i)
			}
			if resp.Header.Get(sumHeader) == "" {
				t.Fatalf("request %d: corruption damaged the headers", i)
			}
			err = verifySum(resp.Header, body, "test")
			if !errors.Is(err, diag.ErrCorruption) {
				t.Fatalf("request %d: verifySum = %v, want ErrCorruption", i, err)
			}
			bodies = append(bodies, body)
		}
		return bodies
	}
	b1, b2 := run(), run()
	for i := range b1 {
		if !bytes.Equal(b1[i], b2[i]) {
			t.Fatalf("same corruption seed produced different bytes at request %d", i)
		}
	}
}

// TestLoopNetLatency: a latency link delays delivery deterministically and a
// request whose context expires first is abandoned with the context error.
func TestLoopNetLatency(t *testing.T) {
	net := NewLoopNet()
	net.Register("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) }))
	net.SetLatency("a", "b", 20*time.Millisecond)

	start := time.Now()
	if _, err := get(t, net, "a", "b", "/x"); err != nil {
		t.Fatalf("latency link failed the request: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency link delivered after %v, want ≥20ms", d)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://b/x", nil)
	if _, err := net.Client("a").Do(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context on latency link: err %v, want deadline exceeded", err)
	}
}

// TestShipBatchCorruptionRejected: a shipped batch whose lines fail their
// checksum is refused before any byte lands in the standby journal — 409 to
// the shipper (riding the snapshot-resync path), counted, reported — and the
// honest shipper recovers by resyncing.
func TestShipBatchCorruptionRejected(t *testing.T) {
	net := NewLoopNet()
	dir := t.TempDir()
	shipPath := filepath.Join(dir, "shipped.journal")
	standby := tnode(t, net, "standby", nil, func(c *Config) {
		c.ShipPath = shipPath
	})
	primary := tnode(t, net, "primary", nil, func(c *Config) {
		c.Standby = "standby"
		c.Service.JournalPath = filepath.Join(dir, "primary.journal")
	})
	ctx := context.Background()
	defer standby.Close(ctx)
	defer primary.Close(ctx)

	id := mustSubmit(t, primary, service.Request{Source: srcOf(t, "ocean")})
	waitResult(t, primary.Service(), id)
	if sent, err := primary.ShipFlush(ctx); err != nil || sent == 0 {
		t.Fatalf("honest flush: sent %d, err %v", sent, err)
	}

	// A tampered batch: plausible epoch/seq continuation, lines that do not
	// match the declared checksum.
	batch := shipBatch{
		From:  "evil",
		Epoch: 1,
		Seq:   999,
		Lines: [][]byte{[]byte("{\"type\":\"submitted\",\"id\":\"fake\"}\n")},
	}
	batch.Sum = sumLines(batch.Lines) ^ 0xdeadbeef
	body, _ := json.Marshal(&batch)
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, "http://standby/internal/v1/ship", bytes.NewReader(body))
	resp, err := net.Client("evil").Do(req)
	if err != nil {
		t.Fatalf("tampered ship POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("tampered batch got status %d, want 409", resp.StatusCode)
	}
	stats := standby.Stats()
	if stats.ShipCorrupt != 1 || stats.CorruptPayloads != 1 {
		t.Fatalf("corruption counters = ship %d / payloads %d, want 1/1", stats.ShipCorrupt, stats.CorruptPayloads)
	}
	if standby.Service().Snapshot().CorruptionEvents == 0 {
		t.Fatal("standby service never heard about the corrupt batch")
	}

	// The honest shipper keeps working: its next flush (snapshot or
	// incremental) is accepted and the shipped journal is promotable.
	id2 := mustSubmit(t, primary, service.Request{Source: srcOf(t, "ocean"), PerturbSeed: 9})
	want := coreOf(waitResult(t, primary.Service(), id2))
	if _, err := primary.ShipFlush(ctx); err != nil {
		// One 409 is allowed (gap repair); the retry must land.
		if _, err := primary.ShipFlush(ctx); err != nil {
			t.Fatalf("post-corruption flush: %v", err)
		}
	}
	if err := standby.Close(ctx); err != nil {
		t.Fatalf("standby close: %v", err)
	}
	svc, err := Takeover(shipPath, service.Config{Workers: 2})
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	defer svc.Close(ctx)
	res := waitResult(t, svc, id2)
	if coreOf(res) != want {
		t.Fatalf("takeover core %s, want %s", coreOf(res), want)
	}
	if n := svc.Snapshot().JournalJobs; n != 2 {
		t.Fatalf("takeover journal holds %d jobs, want 2 (the fake record must not be among them)", n)
	}
}

// TestPeerQuarantineReadmission: a quarantined peer is down for fill/steal
// purposes and re-enters only after `threshold` *consecutive* clean probes —
// unlike an ordinarily-down peer, which one success readmits.
func TestPeerQuarantineReadmission(t *testing.T) {
	net := NewLoopNet()
	net.Register("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(healthReport{Status: "ok", Node: "b", QueueDepth: 3, Ready: true})
	}))
	m := newMembership("a", []string{"b"}, net.Client("a"), time.Second, 2)

	if !m.quarantine("b") {
		t.Fatal("first quarantine reported not-new")
	}
	if m.quarantine("b") {
		t.Fatal("repeat quarantine reported new")
	}
	if m.alive("b") {
		t.Fatal("quarantined peer still alive")
	}

	ctx := context.Background()
	m.probeOnce(ctx) // 1 of 2 consecutive successes
	if m.alive("b") {
		t.Fatal("one clean probe readmitted a quarantined peer (threshold is 2)")
	}
	// A failure resets the consecutive-success count.
	net.Partition("a", "b")
	m.probeOnce(ctx)
	net.Heal("a", "b")
	m.probeOnce(ctx) // back to 1 of 2
	if m.alive("b") {
		t.Fatal("success count survived an intervening failure")
	}
	m.probeOnce(ctx) // 2 of 2
	if !m.alive("b") {
		t.Fatal("threshold consecutive successes did not readmit the peer")
	}
	if m.snapshot()["b"].Quarantined {
		t.Fatal("readmitted peer still flagged quarantined")
	}
	if m.depth("b") != 3 {
		t.Fatalf("readmitted peer depth %d, want 3", m.depth("b"))
	}
}
