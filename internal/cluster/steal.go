package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/service"
)

// Work stealing: an idle node borrows queued jobs from the most-loaded live
// peer, executes them through its own (cached, policed) pipeline, and posts
// the results back to the origin, which installs them through its normal
// finish path. The protocol is loss-proof by layering, not by care:
//
//   - the origin keeps every lent job visible and re-enqueues it if no
//     completion arrives within its reclaim window, so a stealer that dies
//     delays a job, never loses it;
//   - duplicate executions are interchangeable by weak determinism, so the
//     origin just drops late or repeated completions;
//   - a stolen job the stealer cannot execute is aborted back and
//     re-discovered locally with its full typed failure report.

// StealOnce runs one steal round: if this node is idle, borrow up to
// Config.StealBatch jobs from the live peer reporting the deepest queue, and
// execute them. Synchronous — the background loop calls it on a ticker, and
// deterministic tests call it directly.
func (n *Node) StealOnce(ctx context.Context) int {
	if n.members == nil || n.svc.QueueDepth() > 0 || n.svc.Ready() != nil {
		return 0 // busy or unready nodes don't steal
	}
	// Deterministic victim choice: deepest queue, name as tie-break.
	peers := n.members.peerList()
	sort.Strings(peers)
	victim, depth := "", 0
	for _, p := range peers {
		if d := n.members.depth(p); d > depth {
			victim, depth = p, d
		}
	}
	if victim == "" {
		return 0
	}
	jobs, err := n.stealFrom(ctx, victim, n.cfg.StealBatch)
	if err != nil || len(jobs) == 0 {
		return 0
	}
	n.ctr.stealsDone.Add(int64(len(jobs)))
	for _, sj := range jobs {
		n.runStolen(ctx, victim, sj)
	}
	return len(jobs)
}

// stealFrom asks victim for up to max queued jobs.
func (n *Node) stealFrom(ctx context.Context, victim string, max int) ([]service.StolenJob, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	url := fmt.Sprintf("http://%s/internal/v1/steal?max=%d", victim, max)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("steal %s: status %d", victim, resp.StatusCode)
	}
	var jobs []service.StolenJob
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("steal %s: %w", victim, err)
	}
	return jobs, nil
}

// runStolen executes one borrowed job and reports the outcome to its origin.
// Execution failures become aborts: the origin re-runs the job locally and
// produces its own typed report, so a deterministic failure is diagnosed by
// the node that owns the job, with no error marshalling across the wire.
func (n *Node) runStolen(ctx context.Context, origin string, sj service.StolenJob) {
	res, err := n.svc.ExecuteDetached(ctx, sj.Req)
	if err != nil {
		res = nil
	}
	n.postComplete(ctx, origin, sj.ID, res)
}

// postComplete sends a stolen job's result (nil = abort) back to origin. A
// delivery failure is tolerable: the origin's reclaim timer re-enqueues the
// job, and our wasted execution is just that — wasted, not wrong.
func (n *Node) postComplete(ctx context.Context, origin, id string, res *service.Result) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	body, err := json.Marshal(completeMsg{ID: id, Result: res})
	if err != nil {
		return
	}
	url := "http://" + origin + "/internal/v1/complete"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	setSum(req.Header, body)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		n.ctr.completeFails.Add(1)
		return
	}
	resp.Body.Close()
	if res != nil {
		n.ctr.completesSent.Add(1)
	}
}

// newTimer wraps time.NewTimer for the hedge; split out so the zero-delay
// case (tests that want an immediate hedge) still goes through a channel.
func newTimer(d time.Duration) *time.Timer {
	if d <= 0 {
		d = time.Nanosecond
	}
	return time.NewTimer(d)
}
