package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/diag"
	"repro/internal/service"
)

// Config wires one cluster node.
type Config struct {
	// Self is this node's advertised address (the name peers reach it by).
	Self string
	// Peers is the static member list, Self included or not — Self is
	// filtered out. An empty list (after filtering) is single-node mode: no
	// hooks are installed and the node is bitwise-identical to the bare
	// service.
	Peers []string
	// Standby, when non-empty, is the address journal records are shipped to
	// for warm takeover.
	Standby string
	// Service is the inner engine's configuration. Its Fill, Offer and
	// ShipRecord hooks must be nil; the node owns them.
	Service service.Config
	// Client is the transport to peers; nil means a default *http.Client.
	Client Doer

	// VirtualShards is the virtual points per node on the hash ring
	// (default 64).
	VirtualShards int
	// ProbeInterval is the health-probe period (default 500ms); <0 disables
	// the background prober (tests drive ProbeOnce directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 250ms).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a peer down
	// (default 3).
	FailThreshold int

	// FillTimeout bounds one peer cache fill end to end (default 300ms).
	FillTimeout time.Duration
	// HedgeAfter fires the single hedged retry if the first fill attempt has
	// not answered by then (default FillTimeout/3).
	HedgeAfter time.Duration

	// StealInterval is the idle work-stealing poll period (default 250ms);
	// <0 disables the background stealer (tests drive StealOnce directly).
	StealInterval time.Duration
	// StealBatch is the maximum jobs borrowed per steal (default 2).
	StealBatch int

	// ShipInterval is the journal-shipping flush period (default 100ms);
	// <0 disables the background flusher (tests drive ShipFlush directly).
	ShipInterval time.Duration
	// ShipPath, when non-empty, makes this node a standby target: shipped
	// records are persisted there, ready for Takeover.
	ShipPath string
}

func (c *Config) withDefaults() {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.VirtualShards <= 0 {
		c.VirtualShards = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 300 * time.Millisecond
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = c.FillTimeout / 3
	}
	if c.StealInterval == 0 {
		c.StealInterval = 250 * time.Millisecond
	}
	if c.StealBatch <= 0 {
		c.StealBatch = 2
	}
	if c.ShipInterval == 0 {
		c.ShipInterval = 100 * time.Millisecond
	}
}

// Node is one member of a detserve shard group: the transport-facing wrapper
// around a service.Service. All cluster behaviour lives here; the inner
// service stays transport-agnostic and reaches the cluster only through the
// three Config hooks the node installs (fill, offer, ship).
type Node struct {
	cfg     Config
	svc     *service.Service
	ring    *ring
	members *membership
	shipper *shipper
	standby *standbyStore
	mux     *http.ServeMux
	ctr     counters

	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Open builds and starts a node. With no peers and no standby the inner
// service is opened with untouched hooks — single-node mode really is the
// bare service.
func Open(cfg Config) (*Node, error) {
	cfg.withDefaults()
	n := &Node{cfg: cfg, stop: make(chan struct{})}

	var members []string
	seen := map[string]bool{cfg.Self: true}
	for _, p := range cfg.Peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		members = append(members, p)
	}
	clustered := len(members) > 0
	if clustered {
		all := append([]string{cfg.Self}, members...)
		n.ring = newRing(all, cfg.VirtualShards)
		n.members = newMembership(cfg.Self, members, cfg.Client, cfg.ProbeTimeout, cfg.FailThreshold)
		cfg.Service.Fill = n.fill
		cfg.Service.Offer = n.offer
	}
	if cfg.Standby != "" {
		n.shipper = newShipper(cfg.Self, cfg.Standby, cfg.Client)
		cfg.Service.ShipRecord = n.shipper.record
	}
	if cfg.ShipPath != "" {
		st, err := openStandbyStore(cfg.ShipPath)
		if err != nil {
			return nil, err
		}
		n.standby = st
	}

	svc, err := service.Open(cfg.Service)
	if err != nil {
		return nil, err
	}
	n.svc = svc
	n.buildMux()

	if clustered && cfg.ProbeInterval > 0 {
		n.loop(cfg.ProbeInterval, func(ctx context.Context) { n.members.probeOnce(ctx) })
	}
	if clustered && cfg.StealInterval > 0 {
		n.loop(cfg.StealInterval, func(ctx context.Context) { n.StealOnce(ctx) })
	}
	if n.shipper != nil && cfg.ShipInterval > 0 {
		n.loop(cfg.ShipInterval, func(ctx context.Context) { n.ShipFlush(ctx) })
	}
	return n, nil
}

// loop runs fn every interval until the node stops.
func (n *Node) loop(interval time.Duration, fn func(ctx context.Context)) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				fn(context.Background())
			}
		}
	}()
}

// Service exposes the inner engine (submissions go straight to it — the node
// adds no layer on the client path).
func (n *Node) Service() *service.Service { return n.svc }

// Handler returns the node's full HTTP surface: health and readiness probes
// plus the /internal/v1 peer protocol. The caller mounts it (and any public
// job API) on whatever listener it owns.
func (n *Node) Handler() http.Handler { return n.mux }

// ProbeOnce runs one health-probe round synchronously (test entry point).
func (n *Node) ProbeOnce(ctx context.Context) {
	if n.members != nil {
		n.members.probeOnce(ctx)
	}
}

// Peers reports per-peer liveness state.
func (n *Node) Peers() map[string]PeerStatus {
	if n.members == nil {
		return nil
	}
	return n.members.snapshot()
}

// Owner reports which member owns key — exported for smoke tooling.
func (n *Node) Owner(key string) string {
	if n.ring == nil {
		return n.cfg.Self
	}
	return n.ring.owner(key)
}

// Close drains the background loops, flushes any unshipped journal records,
// and closes the inner service.
func (n *Node) Close(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	err := n.svc.Close(ctx)
	if n.shipper != nil {
		n.ShipFlush(ctx) // last records (final finishes) ship after drain
	}
	if n.standby != nil {
		if cerr := n.standby.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Kill simulates a crash: background loops stop, nothing flushes, the inner
// service dies mid-flight. The chaos harness's node-kill injection.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.svc.Kill()
	n.wg.Wait()
	if n.standby != nil {
		n.standby.close()
	}
}

// buildMux assembles the HTTP surface.
func (n *Node) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", n.handleHealthz)
	mux.HandleFunc("/readyz", n.handleReadyz)
	mux.HandleFunc("/internal/v1/result", n.handleResult)
	mux.HandleFunc("/internal/v1/offer", n.handleOffer)
	mux.HandleFunc("/internal/v1/steal", n.handleSteal)
	mux.HandleFunc("/internal/v1/complete", n.handleComplete)
	mux.HandleFunc("/internal/v1/ship", n.handleShip)
	n.mux = mux
}

// handleHealthz is liveness: 200 whenever the process can answer, with the
// queue depth peers key work-stealing on. It stays 200 while unready —
// liveness and readiness are deliberately different questions.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := healthReport{
		Status:     "ok",
		Node:       n.cfg.Self,
		QueueDepth: n.svc.QueueDepth(),
		Ready:      n.svc.Ready() == nil,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// handleReadyz is readiness: 200 only when the inner service can do real
// work (journal writable, breaker not open, not draining). Unreadiness is
// 503 with the failing gate named, so load balancers drain the node while
// operators read why.
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := n.svc.Ready(); err != nil {
		w.Header().Set("Content-Type", "application/json")
		if ra := service.RetryAfter(err); ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
}

// handleResult serves a peer's cache-fill request: the cached result (with
// schedule) for ?key=, or 404.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	res, ok := n.svc.ResultByKey(key)
	if !ok {
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n.ctr.fillsServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	setSum(w.Header(), body)
	w.Write(body)
}

// handleOffer installs a peer-computed result into the local cache. A
// divergence (offer conflicting with a cached entry) is 409 — the offering
// peer logs it; both sides count it.
func (n *Node) handleOffer(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad offer body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "offer"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var res service.Result
	if err := json.Unmarshal(body, &res); err != nil {
		http.Error(w, "bad offer body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := n.svc.OfferResult(key, &res); err != nil {
		if errors.Is(err, diag.ErrDivergence) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSteal lends up to ?max= queued jobs to the calling peer.
func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	max := n.cfg.StealBatch
	if v := r.URL.Query().Get("max"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			max = parsed
		}
	}
	jobs := n.svc.StealQueued(max)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(jobs)
}

// completeMsg is the body of /internal/v1/complete: a stolen job's outcome.
// A nil Result is an abort — the stealer could not execute the job and hands
// it back.
type completeMsg struct {
	ID     string          `json:"id"`
	Result *service.Result `json:"result"`
}

// handleComplete installs a stolen job's remotely computed result (or abort).
// A corrupt completion is rejected: the job stays lent and the reclaim timer
// re-enqueues it locally — delayed, never wrong.
func (n *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad completion body", http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "complete"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg completeMsg
	if err := json.Unmarshal(body, &msg); err != nil || msg.ID == "" {
		http.Error(w, "bad completion body", http.StatusBadRequest)
		return
	}
	n.svc.CompleteStolen(msg.ID, msg.Result)
	w.WriteHeader(http.StatusNoContent)
}

// handleShip receives a journal-shipping batch (standby side).
func (n *Node) handleShip(w http.ResponseWriter, r *http.Request) {
	if n.standby == nil {
		http.Error(w, "not a standby", http.StatusNotFound)
		return
	}
	var batch shipBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		http.Error(w, "bad ship body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := n.standby.apply(&batch); err != nil {
		if errors.Is(err, diag.ErrCorruption) {
			// The batch's lines do not match its checksum: wire damage. The
			// batch is discarded unapplied; 409 makes the shipper open a
			// fresh epoch with a snapshot, which supersedes the lost lines —
			// corruption repair rides the existing resync path.
			n.ctr.shipCorrupt.Add(1)
			n.ctr.corruptDetected.Add(1)
			n.svc.ReportCorruption(err)
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if errors.Is(err, errShipGap) {
			// The stream has a hole (standby restarted, batch lost to a
			// partition). 409 tells the shipper to resync with a snapshot.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
