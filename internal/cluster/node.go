package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/det"
	"repro/internal/diag"
	"repro/internal/service"
)

// Config wires one cluster node.
type Config struct {
	// Self is this node's advertised address (the name peers reach it by).
	Self string
	// Peers is the static member list, Self included or not — Self is
	// filtered out. An empty list (after filtering) is single-node mode: no
	// hooks are installed and the node is bitwise-identical to the bare
	// service. Mutually exclusive with SeedPeers.
	Peers []string
	// SeedPeers switches the node to dynamic membership: instead of a fixed
	// member list, the cluster's shape is a versioned view spread by gossip.
	// A non-nil (even empty) SeedPeers selects dynamic mode. With seeds the
	// node starts in StateJoining and must Join through one of them before
	// the ring admits it; with an empty list it bootstraps as the active
	// cluster-of-one that others join.
	SeedPeers []string
	// Standby, when non-empty, is the address journal records are shipped to
	// for warm takeover.
	Standby string
	// Service is the inner engine's configuration. Its Fill, Offer and
	// ShipRecord hooks must be nil; the node owns them.
	Service service.Config
	// Client is the transport to peers; nil means a default *http.Client.
	Client Doer

	// VirtualShards is the virtual points per node on the hash ring
	// (default 64).
	VirtualShards int
	// ProbeInterval is the health-probe period (default 500ms); <0 disables
	// the background prober (tests drive ProbeOnce directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 250ms).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a peer down
	// (default 3).
	FailThreshold int

	// FillTimeout bounds one peer cache fill end to end (default 300ms).
	FillTimeout time.Duration
	// HedgeAfter fires the single hedged retry if the first fill attempt has
	// not answered by then (default FillTimeout/3).
	HedgeAfter time.Duration

	// StealInterval is the idle work-stealing poll period (default 250ms);
	// <0 disables the background stealer (tests drive StealOnce directly).
	StealInterval time.Duration
	// StealBatch is the maximum jobs borrowed per steal (default 2).
	StealBatch int

	// ShipInterval is the journal-shipping flush period (default 100ms);
	// <0 disables the background flusher (tests drive ShipFlush directly).
	ShipInterval time.Duration
	// ShipPath, when non-empty, makes this node a standby target: shipped
	// records are persisted there, ready for Takeover.
	ShipPath string

	// GossipInterval is the membership-dissemination period in dynamic mode
	// (default 200ms); <0 disables the background gossiper (tests drive
	// GossipOnce directly).
	GossipInterval time.Duration
	// GossipFanout is the peers contacted per gossip round (default 2).
	GossipFanout int
	// GossipSeed seeds the deterministic peer-selection stream (default 1).
	GossipSeed int64

	// RepairInterval is the anti-entropy period (default 2s); <0 disables
	// the background repair loop (tests drive RepairOnce directly).
	RepairInterval time.Duration
	// RepairMax bounds the keys re-verified per repair round (default 128).
	RepairMax int
}

// Validate rejects contradictory cluster configurations with a typed
// *diag.MisuseError (Kind diag.ErrBadConfig), mirroring the service's own
// config validation. Open calls it; the root facade exports it so embedders
// can validate before paying for a failed Open.
func (c *Config) Validate() error {
	bad := func(detail string) error {
		return &diag.MisuseError{Op: "cluster.Open", ThreadID: -1, Kind: diag.ErrBadConfig, Detail: detail}
	}
	if len(c.Peers) > 0 && c.SeedPeers != nil {
		return bad("Peers and SeedPeers are mutually exclusive: a node is either statically configured or gossip-joined, not both")
	}
	if c.Self == "" && (len(c.Peers) > 0 || c.SeedPeers != nil) {
		return bad("clustered node needs a Self address")
	}
	if c.Service.Fill != nil || c.Service.Offer != nil || c.Service.ShipRecord != nil {
		return bad("Service.Fill/Offer/ShipRecord must be nil: the cluster node owns the service hooks")
	}
	return nil
}

func (c *Config) withDefaults() {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.VirtualShards <= 0 {
		c.VirtualShards = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 300 * time.Millisecond
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = c.FillTimeout / 3
	}
	if c.StealInterval == 0 {
		c.StealInterval = 250 * time.Millisecond
	}
	if c.StealBatch <= 0 {
		c.StealBatch = 2
	}
	if c.ShipInterval == 0 {
		c.ShipInterval = 100 * time.Millisecond
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 200 * time.Millisecond
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = 2
	}
	if c.GossipSeed == 0 {
		c.GossipSeed = 1
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 2 * time.Second
	}
	if c.RepairMax <= 0 {
		c.RepairMax = 128
	}
}

// Node is one member of a detserve shard group: the transport-facing wrapper
// around a service.Service. All cluster behaviour lives here; the inner
// service stays transport-agnostic and reaches the cluster only through the
// three Config hooks the node installs (fill, offer, ship).
type Node struct {
	cfg     Config
	svc     *service.Service
	members *membership
	dynamic bool
	shipper *shipper
	standby *standbyStore
	mux     *http.ServeMux
	ctr     counters

	// ringMu guards the mutable consistent-hash ring, rebuilt whenever the
	// membership view's config epoch advances. ring is nil while no member
	// is active (a lone joiner before admission).
	ringMu    sync.RWMutex
	ring      *ring
	ringEpoch int64
	ringBuilt bool

	// moveMu guards pendingMoves: the deterministic key-movement diff from
	// the last ring rebuild — keys this node owned under the old ring whose
	// ownership moved, mapped to their new owner. RebalanceOnce drains it.
	moveMu       sync.Mutex
	pendingMoves map[string]string

	// gmu guards the seeded gossip peer-selection stream and the repair
	// round-robin cursor.
	gmu       sync.Mutex
	grand     *det.Rand
	repairIdx int

	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	draining bool
}

// Open builds and starts a node. With no peers and no standby the inner
// service is opened with untouched hooks — single-node mode really is the
// bare service. A non-nil SeedPeers selects dynamic membership instead: the
// node is clustered from birth (even alone) so that it can be joined, and
// newcomers call Join after Open to bootstrap through a seed.
func Open(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.withDefaults()
	n := &Node{cfg: cfg, stop: make(chan struct{}), pendingMoves: make(map[string]string)}

	clustered := false
	if cfg.SeedPeers != nil {
		n.dynamic = true
		clustered = true
		seeds := dedupePeers(cfg.Self, cfg.SeedPeers)
		n.cfg.SeedPeers = seeds
		n.members = newDynamicMembership(cfg.Self, len(seeds) == 0, cfg.Client, cfg.ProbeTimeout, cfg.FailThreshold)
	} else {
		members := dedupePeers(cfg.Self, cfg.Peers)
		clustered = len(members) > 0
		if clustered {
			n.members = newMembership(cfg.Self, members, cfg.Client, cfg.ProbeTimeout, cfg.FailThreshold)
		}
	}
	if clustered {
		n.grand = det.NewRand(cfg.GossipSeed, gossipStream(cfg.Self))
		cfg.Service.Fill = n.fill
		cfg.Service.Offer = n.offer
	}
	if cfg.Standby != "" {
		n.shipper = newShipper(cfg.Self, cfg.Standby, cfg.Client)
		cfg.Service.ShipRecord = n.shipper.record
	}
	if cfg.ShipPath != "" {
		st, err := openStandbyStore(cfg.ShipPath)
		if err != nil {
			return nil, err
		}
		n.standby = st
	}

	svc, err := service.Open(cfg.Service)
	if err != nil {
		return nil, err
	}
	n.svc = svc
	n.syncRing()
	n.buildMux()

	if clustered && cfg.ProbeInterval > 0 {
		n.loop(cfg.ProbeInterval, func(ctx context.Context) { n.members.probeOnce(ctx) })
	}
	if clustered && cfg.StealInterval > 0 {
		n.loop(cfg.StealInterval, func(ctx context.Context) { n.StealOnce(ctx) })
	}
	if n.shipper != nil && cfg.ShipInterval > 0 {
		n.loop(cfg.ShipInterval, func(ctx context.Context) { n.ShipFlush(ctx) })
	}
	if n.dynamic && cfg.GossipInterval > 0 {
		n.loop(cfg.GossipInterval, func(ctx context.Context) { n.GossipOnce(ctx) })
	}
	if clustered && cfg.RepairInterval > 0 {
		n.loop(cfg.RepairInterval, func(ctx context.Context) {
			n.RebalanceOnce(ctx)
			n.RepairOnce(ctx)
		})
	}
	return n, nil
}

// dedupePeers hardens a configured peer list: empty names and repeats are
// dropped, and self is removed if listed (a node never peers with itself).
func dedupePeers(self string, peers []string) []string {
	seen := map[string]bool{self: true, "": true}
	var out []string
	for _, p := range peers {
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// gossipStream derives a node's partitioned RNG stream id from its name, so
// every node draws gossip targets from its own deterministic stream of the
// shared seed.
func gossipStream(self string) int {
	h := fnv.New32a()
	io.WriteString(h, self)
	return int(h.Sum32() % 4096)
}

// loop runs fn every interval until the node stops.
func (n *Node) loop(interval time.Duration, fn func(ctx context.Context)) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				fn(context.Background())
			}
		}
	}()
}

// syncRing rebuilds the consistent-hash ring if the membership view's config
// epoch advanced since the last build, and computes the deterministic
// key-movement diff: every cached key this node owned under the old ring but
// not the new one is queued (key → new owner) for RebalanceOnce to push.
// The diff is pure — two nodes with the same view, ring parameters and cache
// contents compute the identical move set.
func (n *Node) syncRing() {
	if n.members == nil {
		return
	}
	names := n.members.ringMembers()
	epoch := n.members.epoch()

	n.ringMu.Lock()
	if n.ringBuilt && epoch == n.ringEpoch {
		n.ringMu.Unlock()
		return
	}
	old := n.ring
	var nr *ring
	if len(names) > 0 {
		nr = newRing(names, n.cfg.VirtualShards)
	}
	n.ring = nr
	n.ringEpoch = epoch
	n.ringBuilt = true
	n.ringMu.Unlock()
	n.ctr.ringRebuilds.Add(1)

	if old == nil || nr == nil || n.svc == nil {
		return
	}
	for _, ck := range n.svc.CacheScan() {
		if old.owner(ck.Key) == n.cfg.Self {
			if to := nr.owner(ck.Key); to != n.cfg.Self {
				n.moveMu.Lock()
				n.pendingMoves[ck.Key] = to
				n.moveMu.Unlock()
			}
		}
	}
}

// ownerOf resolves key's current ring owner. ok is false when no ring exists
// (single-node, or a joiner before admission) — callers fall back to local.
func (n *Node) ownerOf(key string) (owner string, ok bool) {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	if n.ring == nil {
		return n.cfg.Self, false
	}
	return n.ring.owner(key), true
}

// ringNodeList returns the current ring's sorted member names (nil when no
// ring exists).
func (n *Node) ringNodeList() []string {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	if n.ring == nil {
		return nil
	}
	return n.ring.nodes()
}

// Service exposes the inner engine (submissions go straight to it — the node
// adds no layer on the client path).
func (n *Node) Service() *service.Service { return n.svc }

// Handler returns the node's full HTTP surface: health and readiness probes,
// the /internal/v1 peer protocol, and the /v1/cluster membership operations.
// The caller mounts it (and any public job API) on whatever listener it owns.
func (n *Node) Handler() http.Handler { return n.mux }

// ProbeOnce runs one health-probe round synchronously (test entry point).
func (n *Node) ProbeOnce(ctx context.Context) {
	if n.members != nil {
		n.members.probeOnce(ctx)
	}
}

// Peers reports per-peer liveness and membership state.
func (n *Node) Peers() map[string]PeerStatus {
	if n.members == nil {
		return nil
	}
	return n.members.snapshot()
}

// Name reports the node's own cluster address ("" in single-node mode).
func (n *Node) Name() string { return n.cfg.Self }

// Owner reports which member owns key — exported for smoke tooling.
func (n *Node) Owner(key string) string {
	owner, _ := n.ownerOf(key)
	return owner
}

// Epoch reports the membership view's config epoch (0 for single-node mode).
func (n *Node) Epoch() int64 {
	if n.members == nil {
		return 0
	}
	return n.members.epoch()
}

// ViewDigest reports the membership view's convergence digest ("" for
// single-node mode). Two nodes agree on the cluster's shape exactly when
// their digests match.
func (n *Node) ViewDigest() string {
	if n.members == nil {
		return ""
	}
	return n.members.digest()
}

// View returns a deep copy of the membership view (zero View for
// single-node mode).
func (n *Node) View() View {
	if n.members == nil {
		return View{}
	}
	return n.members.viewClone()
}

// Close drains the background loops, flushes any unshipped journal records,
// and closes the inner service.
func (n *Node) Close(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	err := n.svc.Close(ctx)
	if n.shipper != nil {
		n.ShipFlush(ctx) // last records (final finishes) ship after drain
	}
	if n.standby != nil {
		if cerr := n.standby.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Kill simulates a crash: background loops stop, nothing flushes, the inner
// service dies mid-flight. The chaos harness's node-kill injection.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.svc.Kill()
	n.wg.Wait()
	if n.standby != nil {
		n.standby.close()
	}
}

// buildMux assembles the HTTP surface.
func (n *Node) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", n.handleHealthz)
	mux.HandleFunc("/readyz", n.handleReadyz)
	mux.HandleFunc("/internal/v1/result", n.handleResult)
	mux.HandleFunc("/internal/v1/offer", n.handleOffer)
	mux.HandleFunc("/internal/v1/steal", n.handleSteal)
	mux.HandleFunc("/internal/v1/complete", n.handleComplete)
	mux.HandleFunc("/internal/v1/ship", n.handleShip)
	mux.HandleFunc("/internal/v1/gossip", n.handleGossip)
	mux.HandleFunc("/internal/v1/join", n.handleJoin)
	mux.HandleFunc("/internal/v1/handoff", n.handleHandoff)
	mux.HandleFunc("/internal/v1/handoff-journal", n.handleHandoffJournal)
	mux.HandleFunc("/internal/v1/digest", n.handleDigest)
	mux.HandleFunc("/v1/cluster/join", n.handleJoin)
	mux.HandleFunc("/v1/cluster/drain", n.handleDrainRequest)
	mux.HandleFunc("/v1/cluster/stats", n.handleClusterStats)
	n.mux = mux
}

// clusterStatus is the GET /v1/cluster/stats body: counters plus the
// membership view and per-peer liveness — the operator's one-call picture of
// the cluster as this node sees it.
type clusterStatus struct {
	Node  string                `json:"node"`
	Stats Stats                 `json:"stats"`
	View  View                  `json:"view,omitempty"`
	Peers map[string]PeerStatus `json:"peers,omitempty"`
	Ring  []string              `json:"ring,omitempty"`
}

// handleClusterStats reports the node's cluster-layer state.
func (n *Node) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	st := clusterStatus{Node: n.cfg.Self, Stats: n.Stats(), Peers: n.Peers(), Ring: n.ringNodeList()}
	if n.members != nil {
		st.View = n.members.viewClone()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleHealthz is liveness: 200 whenever the process can answer, with the
// queue depth peers key work-stealing on. It stays 200 while unready —
// liveness and readiness are deliberately different questions.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := healthReport{
		Status:     "ok",
		Node:       n.cfg.Self,
		QueueDepth: n.svc.QueueDepth(),
		Ready:      n.svc.Ready() == nil,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// handleReadyz is readiness: 200 only when the inner service can do real
// work (journal writable, breaker not open, not draining) and, in dynamic
// mode, the node has been admitted to the ring — a joiner can compute, but
// routing traffic at it before admission hides it from the ownership map.
// Unreadiness is 503 with the failing gate named, so load balancers drain
// the node while operators read why.
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if n.members != nil && n.members.selfState() == StateJoining {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": "joining: not yet admitted to the ring"})
		return
	}
	if err := n.svc.Ready(); err != nil {
		w.Header().Set("Content-Type", "application/json")
		if ra := service.RetryAfter(err); ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
}

// handleResult serves a peer's cache-fill request: the cached result (with
// schedule) for ?key=, or 404.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	res, ok := n.svc.ResultByKey(key)
	if !ok {
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n.ctr.fillsServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	setSum(w.Header(), body)
	w.Write(body)
}

// offerMsg is the body of /internal/v1/offer: the computed result plus,
// when the offering node knows it, the originating request — which makes the
// installed entry recheckable by the owner's anti-entropy repair loop.
type offerMsg struct {
	Res *service.Result  `json:"res"`
	Req *service.Request `json:"req,omitempty"`
}

// handleOffer installs a peer-computed result into the local cache. A
// divergence (offer conflicting with a cached entry) is 409 — the offering
// peer logs it; both sides count it. Bare service.Result bodies (the pre-
// membership wire form) are still accepted.
func (n *Node) handleOffer(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad offer body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "offer"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg offerMsg
	if err := json.Unmarshal(body, &msg); err != nil || msg.Res == nil {
		// Legacy shape: the body is the bare result.
		var res service.Result
		if err := json.Unmarshal(body, &res); err != nil {
			http.Error(w, "bad offer body: "+err.Error(), http.StatusBadRequest)
			return
		}
		msg = offerMsg{Res: &res}
	}
	if err := n.svc.OfferResultFrom(key, msg.Res, msg.Req); err != nil {
		if errors.Is(err, diag.ErrDivergence) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSteal lends up to ?max= queued jobs to the calling peer.
func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	max := n.cfg.StealBatch
	if v := r.URL.Query().Get("max"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			max = parsed
		}
	}
	jobs := n.svc.StealQueued(max)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(jobs)
}

// completeMsg is the body of /internal/v1/complete: a stolen job's outcome.
// A nil Result is an abort — the stealer could not execute the job and hands
// it back.
type completeMsg struct {
	ID     string          `json:"id"`
	Result *service.Result `json:"result"`
}

// handleComplete installs a stolen job's remotely computed result (or abort).
// A corrupt completion is rejected: the job stays lent and the reclaim timer
// re-enqueues it locally — delayed, never wrong.
func (n *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad completion body", http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "complete"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg completeMsg
	if err := json.Unmarshal(body, &msg); err != nil || msg.ID == "" {
		http.Error(w, "bad completion body", http.StatusBadRequest)
		return
	}
	n.svc.CompleteStolen(msg.ID, msg.Result)
	w.WriteHeader(http.StatusNoContent)
}

// handleShip receives a journal-shipping batch (standby side).
func (n *Node) handleShip(w http.ResponseWriter, r *http.Request) {
	if n.standby == nil {
		http.Error(w, "not a standby", http.StatusNotFound)
		return
	}
	var batch shipBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		http.Error(w, "bad ship body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := n.standby.apply(&batch); err != nil {
		if errors.Is(err, diag.ErrCorruption) {
			// The batch's lines do not match its checksum: wire damage. The
			// batch is discarded unapplied; 409 makes the shipper open a
			// fresh epoch with a snapshot, which supersedes the lost lines —
			// corruption repair rides the existing resync path.
			n.ctr.shipCorrupt.Add(1)
			n.ctr.corruptDetected.Add(1)
			n.svc.ReportCorruption(err)
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if errors.Is(err, errShipGap) {
			// The stream has a hole (standby restarted, batch lost to a
			// partition). 409 tells the shipper to resync with a snapshot.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
