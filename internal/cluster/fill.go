package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/service"
)

// Peer cache fill: on a local result-cache miss the service asks the node
// (via the Fill hook) whether the shard owner already has the answer. The
// whole exchange is an optimisation riding on weak determinism — every
// failure along the way (owner down, partition, miss, timeout, garbage
// bytes) returns nil, which the service reads as "compute it locally".
// A peer fill can therefore slow a request down; it can never fail one.
//
// Latency discipline: one deadline (Config.FillTimeout) bounds the exchange
// end to end, and a single hedged retry fires if the first attempt has not
// answered within Config.HedgeAfter — the standard tail-latency hedge, but
// capped at exactly one extra request so a struggling owner sees at most 2×
// load, not a retry storm. Each attempt runs under its own child context,
// cancelled the moment it loses: the straggler's goroutine and connection are
// released when the winner returns, not when the shared deadline expires.

// fill is the service.Config.Fill hook.
func (n *Node) fill(ctx context.Context, key string, req *service.Request) *service.Result {
	owner, ok := n.ownerOf(key)
	if !ok || owner == n.cfg.Self {
		return nil // we are the owner (or there is no ring): the miss is authoritative
	}
	if !n.members.alive(owner) {
		n.ctr.fillSkips.Add(1)
		return nil // degradation: down owner means local recomputation
	}
	n.ctr.fillAttempts.Add(1)
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	res := n.fetchHedged(ctx, owner, key)
	if res == nil {
		n.ctr.fillMisses.Add(1)
		return nil
	}
	n.ctr.fillHits.Add(1)
	return res
}

// fetchHedged races the primary fetch against a delayed hedge. Every attempt
// gets its own cancellable child context; when one attempt wins, the losers
// are cancelled immediately so no request goroutine outlives the answer by
// more than its cancellation handling.
func (n *Node) fetchHedged(ctx context.Context, owner, key string) *service.Result {
	type outcome struct {
		res *service.Result
		idx int
	}
	results := make(chan outcome, 2) // buffered: a late loser never blocks
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	launch := func() {
		idx := len(cancels)
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			res, err := n.fetchResult(actx, owner, key)
			if err != nil {
				res = nil
			}
			results <- outcome{res, idx}
		}()
	}
	launch()
	hedge := newTimer(n.cfg.HedgeAfter)
	defer hedge.Stop()
	pending := 1
	for pending > 0 {
		select {
		case out := <-results:
			pending--
			cancels[out.idx]() // attempt finished; release its context now
			if out.res != nil {
				return out.res // deferred cancels cut the straggler loose
			}
		case <-hedge.C:
			n.ctr.fillHedges.Add(1)
			pending++
			launch()
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}

// fetchResult issues one GET /internal/v1/result to owner.
func (n *Node) fetchResult(ctx context.Context, owner, key string) (*service.Result, error) {
	url := "http://" + owner + "/internal/v1/result?key=" + key
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // clean miss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fill %s: status %d", owner, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fill %s: %w", owner, err)
	}
	// Verify before decoding: a corrupt peer response must never become a
	// served result. Detection quarantines the peer and falls back to local
	// recomputation — slower, never wrong.
	if err := verifySum(resp.Header, body, "fill from "+owner); err != nil {
		n.reportPeerCorruption(owner, err)
		return nil, err
	}
	var res service.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("fill %s: %w", owner, err)
	}
	return &res, nil
}

// offer is the service.Config.Offer hook: after computing a result this node
// does not own, push it to the shard owner so the next miss anywhere in the
// cluster fills from cache. Fire-and-forget on a bounded deadline — a failed
// offer costs the cluster one future recomputation, nothing else. The
// originating request rides along so the owner's entry stays recheckable by
// its anti-entropy repair loop.
func (n *Node) offer(key string, res *service.Result, req *service.Request) {
	owner, ok := n.ownerOf(key)
	if !ok || owner == n.cfg.Self || !n.members.alive(owner) {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.FillTimeout)
		defer cancel()
		n.sendOffer(ctx, owner, key, res, req)
	}()
}

// sendOffer posts one offer synchronously and classifies the outcome. The
// async offer hook, the rebalance push, and the repair backfill all funnel
// through it, so the counters mean the same thing on every path.
func (n *Node) sendOffer(ctx context.Context, owner, key string, res *service.Result, req *service.Request) error {
	body, err := json.Marshal(offerMsg{Res: res, Req: req})
	if err != nil {
		n.ctr.offerFails.Add(1)
		return err
	}
	url := "http://" + owner + "/internal/v1/offer?key=" + key
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		n.ctr.offerFails.Add(1)
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	setSum(hreq.Header, body)
	resp, err := n.cfg.Client.Do(hreq)
	if err != nil {
		n.ctr.offerFails.Add(1)
		return err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		n.ctr.offersSent.Add(1)
		return nil
	case http.StatusConflict:
		// The owner's cached entry disagrees with ours: a determinism
		// divergence, counted on both sides and policed by the owner's
		// breaker.
		n.ctr.offerDivergences.Add(1)
		return fmt.Errorf("offer %s: divergence (409)", owner)
	default:
		n.ctr.offerFails.Add(1)
		return fmt.Errorf("offer %s: status %d", owner, resp.StatusCode)
	}
}
