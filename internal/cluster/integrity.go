package cluster

import (
	"fmt"
	"hash/crc32"
	"net/http"

	"repro/internal/diag"
)

// Wire integrity. Every peer-protocol payload that carries a result — fill
// responses, offer and complete bodies — travels with a CRC32C of its bytes
// in the X-Detserve-Sum header, and journal-shipping batches carry a Sum over
// their lines. TCP's checksum is famously weak and proxies/caches can mangle
// bodies wholesale, so each receiver verifies before decoding: a mismatch is
// a typed *diag.CorruptionError, the payload is discarded (recomputed,
// resynced, or refetched — determinism makes every copy replaceable), the
// event is counted, and the sending peer is quarantined until it proves
// healthy again. Verification is backward compatible: a message without the
// header (an older node) is accepted unverified.

// sumHeader carries the CRC32C (Castagnoli, 8 hex digits) of the HTTP body.
const sumHeader = "X-Detserve-Sum"

var wireTable = crc32.MakeTable(crc32.Castagnoli)

// bodySum is the wire checksum of a payload.
func bodySum(b []byte) uint32 { return crc32.Checksum(b, wireTable) }

// setSum stamps the checksum header for body onto h.
func setSum(h http.Header, body []byte) {
	h.Set(sumHeader, fmt.Sprintf("%08x", bodySum(body)))
}

// verifySum checks body against the checksum header from peer. A missing
// header verifies vacuously (legacy sender); a malformed or mismatched one is
// a *diag.CorruptionError.
func verifySum(h http.Header, body []byte, source string) error {
	declared := h.Get(sumHeader)
	if declared == "" {
		return nil
	}
	var want uint32
	if _, err := fmt.Sscanf(declared, "%08x", &want); err != nil {
		return &diag.CorruptionError{Source: source, Detail: fmt.Sprintf("malformed %s header %q", sumHeader, declared)}
	}
	if got := bodySum(body); got != want {
		return &diag.CorruptionError{Source: source, Detail: fmt.Sprintf("body checksum mismatch (declared %08x, computed %08x over %d bytes)", want, got, len(body))}
	}
	return nil
}

// sumLines is the batch checksum journal shipping uses: CRC32C over the
// concatenated lines. Empty input sums to 0, which the protocol reads as
// "no checksum" — a legacy shipper's batches verify vacuously.
func sumLines(lines [][]byte) uint32 {
	h := crc32.New(wireTable)
	for _, line := range lines {
		h.Write(line)
	}
	return h.Sum32()
}

// reportPeerCorruption is the one funnel for detected peer-payload damage:
// count it, quarantine the peer (it keeps serving damaged bytes until proven
// healthy — see membership.quarantine), and feed the service breaker so
// sustained corruption stops admission instead of racing the fault.
func (n *Node) reportPeerCorruption(peer string, err error) {
	n.ctr.corruptDetected.Add(1)
	if n.members != nil && n.members.quarantine(peer) {
		n.ctr.peerQuarantines.Add(1)
	}
	n.svc.ReportCorruption(err)
}
