package ir

import "fmt"

// ModuleBuilder constructs a Module programmatically. It is the API used by
// the synthetic SPLASH-like workload generators (package splash) and by tests.
type ModuleBuilder struct {
	M *Module
}

// NewModule returns a builder for a fresh module.
func NewModule(name string) *ModuleBuilder {
	return &ModuleBuilder{M: &Module{Name: name}}
}

// Global declares a global memory region.
func (mb *ModuleBuilder) Global(name string, size int64) *Global {
	return mb.M.AddGlobal(name, size)
}

// GlobalInit declares a global with initial contents.
func (mb *ModuleBuilder) GlobalInit(name string, data []int64) *Global {
	g := mb.M.AddGlobal(name, int64(len(data)))
	g.Init = append([]int64(nil), data...)
	return g
}

// Locks reserves n mutex ids (0..n-1).
func (mb *ModuleBuilder) Locks(n int) { mb.M.NumLocks = n }

// Barriers reserves n barrier ids.
func (mb *ModuleBuilder) Barriers(n int) { mb.M.NumBars = n }

// Func starts a new function with the given parameter names. Parameters are
// bound to registers 0..len(params)-1.
func (mb *ModuleBuilder) Func(name string, params ...string) *FuncBuilder {
	f := &Func{Name: sanitizeName(name), NumParams: len(params), Module: mb.M}
	fb := &FuncBuilder{F: f, mb: mb, regs: map[string]Reg{}}
	for _, p := range params {
		fb.Reg(p)
	}
	mb.M.Funcs = append(mb.M.Funcs, f)
	return fb
}

// FuncBuilder constructs one function: register allocation plus block
// construction helpers.
type FuncBuilder struct {
	F    *Func
	mb   *ModuleBuilder
	regs map[string]Reg
	cur  *BlockBuilder
}

// Reg returns the register bound to name, allocating it on first use.
func (fb *FuncBuilder) Reg(name string) Reg {
	if r, ok := fb.regs[name]; ok {
		return r
	}
	r := Reg(fb.F.NumRegs)
	fb.F.NumRegs++
	fb.regs[name] = r
	fb.F.RegNames = append(fb.F.RegNames, name)
	return r
}

// Temp allocates an anonymous register.
func (fb *FuncBuilder) Temp() Reg {
	return fb.Reg(fmt.Sprintf("$t%d", fb.F.NumRegs))
}

// Block creates (or returns) the named block and makes it current.
func (fb *FuncBuilder) Block(name string) *BlockBuilder {
	name = sanitizeName(name)
	if b := fb.F.Block(name); b != nil {
		fb.cur = &BlockBuilder{B: b, fb: fb}
		return fb.cur
	}
	b := &Block{Name: name, Func: fb.F, Index: len(fb.F.Blocks)}
	fb.F.Blocks = append(fb.F.Blocks, b)
	fb.cur = &BlockBuilder{B: b, fb: fb}
	return fb.cur
}

// BlockBuilder appends instructions and sets the terminator of one block.
type BlockBuilder struct {
	B  *Block
	fb *FuncBuilder
}

func (bb *BlockBuilder) add(i Instr) *BlockBuilder {
	bb.B.Instrs = append(bb.B.Instrs, i)
	return bb
}

// Const sets dst to an immediate.
func (bb *BlockBuilder) Const(dst Reg, v int64) *BlockBuilder {
	return bb.add(Instr{Op: OpConst, Dst: dst, A: Imm(v)})
}

// Mov copies a into dst.
func (bb *BlockBuilder) Mov(dst Reg, a Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpMov, Dst: dst, A: a})
}

// Bin appends a binary arithmetic/compare instruction.
func (bb *BlockBuilder) Bin(op Op, dst Reg, a, b Operand) *BlockBuilder {
	if !op.IsBinary() {
		panic("ir: Bin with non-binary op " + op.String())
	}
	return bb.add(Instr{Op: op, Dst: dst, A: a, B: b})
}

// Un appends a unary instruction.
func (bb *BlockBuilder) Un(op Op, dst Reg, a Operand) *BlockBuilder {
	if !op.IsUnary() {
		panic("ir: Un with non-unary op " + op.String())
	}
	return bb.add(Instr{Op: op, Dst: dst, A: a})
}

// Load reads mem[sym][idx] into dst.
func (bb *BlockBuilder) Load(dst Reg, sym string, idx Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpLoad, Dst: dst, Sym: sym, A: idx})
}

// Store writes val to mem[sym][idx].
func (bb *BlockBuilder) Store(sym string, idx, val Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpStore, Sym: sym, A: idx, B: val})
}

// Call invokes callee; dst may be NoReg to discard the result.
func (bb *BlockBuilder) Call(dst Reg, callee string, args ...Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpCall, Dst: dst, Callee: sanitizeName(callee), Args: args})
}

// Lock acquires mutex id.
func (bb *BlockBuilder) Lock(id Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpLock, A: id})
}

// Unlock releases mutex id.
func (bb *BlockBuilder) Unlock(id Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpUnlock, A: id})
}

// Barrier waits at barrier id.
func (bb *BlockBuilder) Barrier(id Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpBarrier, A: id})
}

// Tid sets dst to the executing thread's id.
func (bb *BlockBuilder) Tid(dst Reg) *BlockBuilder {
	return bb.add(Instr{Op: OpTid, Dst: dst})
}

// NThreads sets dst to the thread count.
func (bb *BlockBuilder) NThreads(dst Reg) *BlockBuilder {
	return bb.add(Instr{Op: OpNThreads, Dst: dst})
}

// Print appends a to the thread's deterministic output log.
func (bb *BlockBuilder) Print(a Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpPrint, A: a})
}

// Spawn starts a new deterministic thread running callee; dst receives its
// handle for Join.
func (bb *BlockBuilder) Spawn(dst Reg, callee string, args ...Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpSpawn, Dst: dst, Callee: sanitizeName(callee), Args: args})
}

// Join blocks until the thread with handle h finishes.
func (bb *BlockBuilder) Join(h Operand) *BlockBuilder {
	return bb.add(Instr{Op: OpJoin, A: h})
}

// Nop appends a no-effect instruction costing like a mov (used to pad block
// bodies in synthetic workloads).
func (bb *BlockBuilder) Nop(scratch Reg) *BlockBuilder {
	return bb.add(Instr{Op: OpMov, Dst: scratch, A: R(scratch)})
}

// Jmp terminates the block with an unconditional jump.
func (bb *BlockBuilder) Jmp(to string) {
	bb.B.Term = Term{Kind: TermJmp, Succs: []*Block{bb.fb.Block(to).B}}
	bb.restore()
}

// Br terminates the block with a conditional branch.
func (bb *BlockBuilder) Br(cond Operand, then, els string) {
	t := bb.fb.Block(then).B
	e := bb.fb.Block(els).B
	bb.B.Term = Term{Kind: TermBr, Cond: cond, Succs: []*Block{t, e}}
	bb.restore()
}

// Switch terminates the block with a multi-way branch: cond == cases[i] jumps
// to targets[i]; otherwise to def.
func (bb *BlockBuilder) Switch(cond Operand, cases []int64, targets []string, def string) {
	if len(cases) != len(targets) {
		panic("ir: Switch cases/targets length mismatch")
	}
	t := Term{Kind: TermSwitch, Cond: cond, Cases: append([]int64(nil), cases...)}
	for _, name := range targets {
		t.Succs = append(t.Succs, bb.fb.Block(name).B)
	}
	t.Succs = append(t.Succs, bb.fb.Block(def).B)
	bb.B.Term = t
	bb.restore()
}

// Ret terminates the block with a return.
func (bb *BlockBuilder) Ret(v Operand) {
	bb.B.Term = Term{Kind: TermRet, Ret: v}
	bb.restore()
}

// restore re-selects this block as current in the FuncBuilder so that
// Block(...) calls made by terminator helpers (to resolve forward targets)
// don't leave the builder pointing elsewhere.
func (bb *BlockBuilder) restore() { bb.fb.cur = bb }
