package ir

// CFG analyses: predecessors, reverse postorder, dominator tree, natural
// loops and loop depth. These feed the DetLock optimizations: O2a needs
// predecessors/merge-node structure and loop headers, O2b needs loop depth,
// O3 needs dominance, O4 needs back edges.

// Preds computes the predecessor lists of every block, indexed by Block.Index.
func Preds(f *Func) [][]*Block {
	f.reindex()
	preds := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Term.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder (entry first).
func ReversePostorder(f *Func) []*Block {
	f.reindex()
	seen := make([]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Term.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if len(f.Blocks) > 0 {
		dfs(f.Blocks[0])
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree holds immediate-dominator information for a function.
type DomTree struct {
	f *Func
	// idom[i] is the immediate dominator of block i (nil for entry and for
	// unreachable blocks).
	idom []*Block
	// rpoNum[i] is the reverse-postorder number of block i, or -1 if
	// unreachable.
	rpoNum []int
}

// NewDomTree computes the dominator tree using the Cooper–Harvey–Kennedy
// iterative algorithm over reverse postorder.
func NewDomTree(f *Func) *DomTree {
	f.reindex()
	rpo := ReversePostorder(f)
	n := len(f.Blocks)
	dt := &DomTree{f: f, idom: make([]*Block, n), rpoNum: make([]int, n)}
	for i := range dt.rpoNum {
		dt.rpoNum[i] = -1
	}
	for i, b := range rpo {
		dt.rpoNum[b.Index] = i
	}
	if len(rpo) == 0 {
		return dt
	}
	preds := Preds(f)
	entry := rpo[0]
	dt.idom[entry.Index] = entry // temporarily self, cleared below
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range preds[b.Index] {
				if dt.rpoNum[p.Index] < 0 || dt.idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = dt.intersect(p, newIdom)
				}
			}
			if newIdom != nil && dt.idom[b.Index] != newIdom {
				dt.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	dt.idom[entry.Index] = nil
	return dt
}

func (dt *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for dt.rpoNum[a.Index] > dt.rpoNum[b.Index] {
			a = dt.idom[a.Index]
		}
		for dt.rpoNum[b.Index] > dt.rpoNum[a.Index] {
			b = dt.idom[b.Index]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (nil for the entry block).
func (dt *DomTree) Idom(b *Block) *Block { return dt.idom[b.Index] }

// Reachable reports whether b is reachable from the entry block.
func (dt *DomTree) Reachable(b *Block) bool { return dt.rpoNum[b.Index] >= 0 }

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if !dt.Reachable(a) || !dt.Reachable(b) {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		b = dt.idom[b.Index]
	}
	return false
}

// BackEdge is a CFG edge whose destination dominates its source.
type BackEdge struct {
	From, To *Block
}

// Loop is a natural loop: the header plus the body block set.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// LoopInfo aggregates back edges, natural loops and per-block loop depth.
type LoopInfo struct {
	BackEdges []BackEdge
	Loops     []*Loop
	// depth[i] is the loop nesting depth of block i (0 = not in any loop).
	depth   []int
	headers map[*Block]bool
}

// NewLoopInfo detects natural loops via dominance-based back-edge detection.
func NewLoopInfo(f *Func) *LoopInfo {
	f.reindex()
	dt := NewDomTree(f)
	li := &LoopInfo{depth: make([]int, len(f.Blocks)), headers: map[*Block]bool{}}
	preds := Preds(f)
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, s := range b.Term.Succs {
			if dt.Dominates(s, b) {
				li.BackEdges = append(li.BackEdges, BackEdge{From: b, To: s})
			}
		}
	}
	// Merge back edges with the same header into one natural loop.
	byHeader := map[*Block]*Loop{}
	for _, be := range li.BackEdges {
		l := byHeader[be.To]
		if l == nil {
			l = &Loop{Header: be.To, Blocks: map[*Block]bool{be.To: true}}
			byHeader[be.To] = l
			li.Loops = append(li.Loops, l)
			li.headers[be.To] = true
		}
		// Standard natural-loop body collection: walk predecessors back from
		// the latch until the header.
		var stack []*Block
		if !l.Blocks[be.From] {
			l.Blocks[be.From] = true
			stack = append(stack, be.From)
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range preds[x.Index] {
				if !l.Blocks[p] && dt.Reachable(p) {
					l.Blocks[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	for _, l := range li.Loops {
		for b := range l.Blocks {
			li.depth[b.Index]++
		}
	}
	return li
}

// Depth returns b's loop nesting depth (0 when outside all loops).
func (li *LoopInfo) Depth(b *Block) int { return li.depth[b.Index] }

// IsHeader reports whether b is a natural-loop header.
func (li *LoopInfo) IsHeader(b *Block) bool { return li.headers[b] }

// IsBackEdge reports whether from->to is a back edge.
func (li *LoopInfo) IsBackEdge(from, to *Block) bool {
	for _, be := range li.BackEdges {
		if be.From == from && be.To == to {
			return true
		}
	}
	return false
}

// InnermostLoop returns the smallest loop containing b, or nil.
func (li *LoopInfo) InnermostLoop(b *Block) *Loop {
	var best *Loop
	for _, l := range li.Loops {
		if l.Contains(b) && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}
