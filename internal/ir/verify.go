package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of a module: every block has a
// terminator with targets inside its own function, registers are in range,
// load/store symbols resolve to globals, call targets resolve to functions or
// known builtin names, and sync object ids are statically in range when they
// are immediates.
//
// builtinOK reports whether an unresolved callee name is an acceptable
// builtin (nil means no builtins are allowed).
func (m *Module) Verify(builtinOK func(name string) bool) error {
	var errs []error
	seen := map[string]bool{}
	for _, f := range m.Funcs {
		if seen[f.Name] {
			errs = append(errs, fmt.Errorf("duplicate function %q", f.Name))
		}
		seen[f.Name] = true
		if err := m.verifyFunc(f, builtinOK); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (m *Module) verifyFunc(f *Func, builtinOK func(string) bool) error {
	var errs []error
	bad := func(b *Block, format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s.%s: %s", f.Name, b.Name, fmt.Sprintf(format, args...)))
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	if f.NumParams > f.NumRegs {
		errs = append(errs, fmt.Errorf("%s: %d params but only %d regs", f.Name, f.NumParams, f.NumRegs))
	}
	inFunc := map[*Block]bool{}
	names := map[string]bool{}
	for _, b := range f.Blocks {
		inFunc[b] = true
		if names[b.Name] {
			errs = append(errs, fmt.Errorf("%s: duplicate block name %q", f.Name, b.Name))
		}
		names[b.Name] = true
	}
	checkOperand := func(b *Block, o Operand) {
		if !o.IsImm && (o.Reg < 0 || int(o.Reg) >= f.NumRegs) {
			bad(b, "register %d out of range [0,%d)", o.Reg, f.NumRegs)
		}
	}
	checkReg := func(b *Block, r Reg) {
		if r == NoReg {
			return
		}
		if r < 0 || int(r) >= f.NumRegs {
			bad(b, "dst register %d out of range [0,%d)", r, f.NumRegs)
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			switch {
			case ins.Op == OpConst:
				checkReg(b, ins.Dst)
			case ins.Op.IsUnary():
				checkReg(b, ins.Dst)
				checkOperand(b, ins.A)
			case ins.Op.IsBinary():
				checkReg(b, ins.Dst)
				checkOperand(b, ins.A)
				checkOperand(b, ins.B)
			case ins.Op == OpLoad:
				checkReg(b, ins.Dst)
				checkOperand(b, ins.A)
				if m.Global(ins.Sym) == nil {
					bad(b, "load of undefined global %q", ins.Sym)
				}
			case ins.Op == OpStore:
				checkOperand(b, ins.A)
				checkOperand(b, ins.B)
				if m.Global(ins.Sym) == nil {
					bad(b, "store to undefined global %q", ins.Sym)
				}
			case ins.Op == OpSpawn:
				checkReg(b, ins.Dst)
				for _, a := range ins.Args {
					checkOperand(b, a)
				}
				callee := m.Func(ins.Callee)
				if callee == nil {
					bad(b, "spawn of undefined function %q", ins.Callee)
				} else if len(ins.Args) != callee.NumParams {
					bad(b, "spawn %s with %d args, wants %d", ins.Callee, len(ins.Args), callee.NumParams)
				}
			case ins.Op == OpJoin:
				checkOperand(b, ins.A)
			case ins.Op == OpCall:
				checkReg(b, ins.Dst)
				for _, a := range ins.Args {
					checkOperand(b, a)
				}
				callee := m.Func(ins.Callee)
				if callee == nil {
					if builtinOK == nil || !builtinOK(ins.Callee) {
						bad(b, "call to undefined function %q", ins.Callee)
					}
				} else if len(ins.Args) != callee.NumParams {
					bad(b, "call %s with %d args, wants %d", ins.Callee, len(ins.Args), callee.NumParams)
				}
			case ins.Op == OpLock, ins.Op == OpUnlock:
				checkOperand(b, ins.A)
				if ins.A.IsImm && (ins.A.Imm < 0 || ins.A.Imm >= int64(m.NumLocks)) {
					bad(b, "lock id %d out of range [0,%d)", ins.A.Imm, m.NumLocks)
				}
			case ins.Op == OpBarrier:
				checkOperand(b, ins.A)
				if ins.A.IsImm && (ins.A.Imm < 0 || ins.A.Imm >= int64(m.NumBars)) {
					bad(b, "barrier id %d out of range [0,%d)", ins.A.Imm, m.NumBars)
				}
			case ins.Op == OpTid, ins.Op == OpNThreads:
				checkReg(b, ins.Dst)
			case ins.Op == OpPrint:
				checkOperand(b, ins.A)
			case ins.Op == OpClockAdd:
				if ins.Scale != 0 {
					checkOperand(b, ins.B)
				}
			default:
				bad(b, "unknown opcode %d", ins.Op)
			}
		}
		switch b.Term.Kind {
		case TermJmp:
			if len(b.Term.Succs) != 1 {
				bad(b, "jmp with %d successors", len(b.Term.Succs))
			}
		case TermBr:
			if len(b.Term.Succs) != 2 {
				bad(b, "br with %d successors", len(b.Term.Succs))
			}
			checkOperand(b, b.Term.Cond)
		case TermSwitch:
			if len(b.Term.Succs) != len(b.Term.Cases)+1 {
				bad(b, "switch with %d succs for %d cases", len(b.Term.Succs), len(b.Term.Cases))
			}
			checkOperand(b, b.Term.Cond)
		case TermRet:
			if len(b.Term.Succs) != 0 {
				bad(b, "ret with successors")
			}
			checkOperand(b, b.Term.Ret)
		default:
			bad(b, "missing terminator")
		}
		for _, s := range b.Term.Succs {
			if !inFunc[s] {
				bad(b, "successor %q belongs to another function", s.Name)
			}
		}
	}
	return errors.Join(errs...)
}
