package ir

// CostModel maps instructions to logical-clock units. The paper's unit is
// "one instruction", with multi-cycle instructions charged their approximate
// cycle count (§III-A); the same model doubles as the simulator's physical
// cycle cost, so that logical clocks track execution progress the way
// Kendo's retired-store counter does.
type CostModel struct {
	// Op costs; index by Op. Zero entries fall back to DefaultCost.
	OpCost [opMax]int64
	// DefaultCost is used for ops without an explicit entry.
	DefaultCost int64
	// CallOverhead is charged at each call site (frame setup) in addition to
	// the callee body.
	CallOverhead int64
	// ClockUpdateCost is the physical cost of one materialized clock-update
	// instruction sequence (it is NOT added to the logical clock).
	ClockUpdateCost int64
	// LockBaseCost / UnlockCost / BarrierBaseCost are the uncontended
	// physical costs of synchronization operations.
	LockBaseCost    int64
	UnlockCost      int64
	BarrierBaseCost int64
}

// DefaultCostModel mirrors rough x86 latencies: simple ALU ops cost 1, mul 3,
// div 12, memory 2-3, and a two-instruction clock update (add + store to the
// thread's published clock slot) costs 2.
func DefaultCostModel() *CostModel {
	cm := &CostModel{
		DefaultCost:     1,
		CallOverhead:    2,
		ClockUpdateCost: 2,
		LockBaseCost:    12,
		UnlockCost:      8,
		BarrierBaseCost: 20,
	}
	cm.OpCost[OpMul] = 3
	cm.OpCost[OpDiv] = 12
	cm.OpCost[OpMod] = 12
	cm.OpCost[OpLoad] = 3
	cm.OpCost[OpStore] = 2
	cm.OpCost[OpCall] = 2 // charged via CallOverhead too; see InstrCost
	cm.OpCost[OpLock] = 12
	cm.OpCost[OpUnlock] = 8
	cm.OpCost[OpBarrier] = 20
	cm.OpCost[OpPrint] = 2
	cm.OpCost[OpClockAdd] = 2
	cm.OpCost[OpSpawn] = 150
	cm.OpCost[OpJoin] = 10
	return cm
}

// InstrCost returns the logical-clock cost of one instruction. Call
// instructions are charged only their overhead here; callee bodies are
// accounted separately (inline avg for clocked callees, or at runtime for
// unclocked ones). ClockAdd instructions cost nothing logically: they are
// instrumentation, not program work.
func (cm *CostModel) InstrCost(ins *Instr) int64 {
	switch ins.Op {
	case OpCall:
		return cm.CallOverhead
	case OpClockAdd:
		return 0
	}
	if c := cm.OpCost[ins.Op]; c != 0 {
		return c
	}
	return cm.DefaultCost
}

// TermCost returns the logical cost of executing the block terminator (a
// branch instruction; returns are charged like jumps).
func (cm *CostModel) TermCost(t *Term) int64 {
	switch t.Kind {
	case TermSwitch:
		// A switch lowers to a compare-and-branch chain or jump table.
		return cm.DefaultCost * 2
	default:
		return cm.DefaultCost
	}
}

// BlockCost sums the logical cost of a block's own instructions and its
// terminator, excluding callee bodies.
func (cm *CostModel) BlockCost(b *Block) int64 {
	var t int64
	for i := range b.Instrs {
		t += cm.InstrCost(&b.Instrs[i])
	}
	return t + cm.TermCost(&b.Term)
}

// PhysicalInstrCost is the simulator's cycle cost for one instruction: like
// InstrCost, but the instrumentation's clock updates do consume cycles.
func (cm *CostModel) PhysicalInstrCost(ins *Instr) int64 {
	if ins.Op == OpClockAdd {
		return cm.ClockUpdateCost
	}
	return cm.InstrCost(ins)
}
