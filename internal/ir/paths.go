package ir

import "errors"

// Path enumeration for the clockability analyses.
//
// Optimization 1 (Function Clocking) enumerates every entry→return path of a
// loop-free function and asks whether the accumulated clocks agree closely
// enough (range ≤ mean/2.5, σ ≤ mean/5) to replace per-block updates with a
// single mean charged at the call site. Optimization 3 does the same for the
// single-entry region dominated by an arbitrary block.

// ErrTooManyPaths is returned when enumeration exceeds the configured limit;
// callers treat the region as not clockable.
var ErrTooManyPaths = errors.New("ir: path enumeration limit exceeded")

// ErrHasLoop is returned when the walked region contains a back edge.
var ErrHasLoop = errors.New("ir: region contains a loop")

// ErrUnclocked is returned when a path crosses a block whose clock cannot be
// summarized (a call to an unclocked function).
var ErrUnclocked = errors.New("ir: region contains an unclocked call")

// MaxPaths bounds path enumeration; functions with more control-flow paths
// than this are conservatively deemed not clockable.
const MaxPaths = 4096

// BlockClockFunc reports the clock contribution of a block, or ok=false when
// the block's contribution cannot be statically summarized.
type BlockClockFunc func(b *Block) (clock int64, ok bool)

// FunctionPathClocks enumerates all entry→return paths of f and returns the
// accumulated clock of each, using clockOf for per-block contributions.
// Fails with ErrHasLoop on cyclic CFGs, ErrUnclocked when clockOf rejects a
// reachable block, and ErrTooManyPaths past MaxPaths.
func FunctionPathClocks(f *Func, clockOf BlockClockFunc) ([]int64, error) {
	if f.Entry() == nil {
		return nil, errors.New("ir: empty function")
	}
	if f.HasLoops() {
		return nil, ErrHasLoop
	}
	return enumeratePaths(f.Entry(), func(b *Block) (stop bool) { return false }, clockOf)
}

// RegionPathClocks enumerates paths that start at root and end either at a
// return or at the first block where stop returns true (the stop block's
// clock is NOT included). Used by Optimization 3, where paths stop at merge
// nodes with non-dominated successors.
func RegionPathClocks(root *Block, stop func(*Block) bool, clockOf BlockClockFunc) ([]int64, error) {
	return enumeratePaths(root, stop, clockOf)
}

func enumeratePaths(root *Block, stop func(*Block) bool, clockOf BlockClockFunc) ([]int64, error) {
	var clocks []int64
	onStack := map[*Block]bool{}
	var walk func(b *Block, acc int64) error
	walk = func(b *Block, acc int64) error {
		if onStack[b] {
			return ErrHasLoop
		}
		if stop(b) {
			clocks = append(clocks, acc)
			if len(clocks) > MaxPaths {
				return ErrTooManyPaths
			}
			return nil
		}
		c, ok := clockOf(b)
		if !ok {
			return ErrUnclocked
		}
		acc += c
		if b.Term.Kind == TermRet || len(b.Term.Succs) == 0 {
			clocks = append(clocks, acc)
			if len(clocks) > MaxPaths {
				return ErrTooManyPaths
			}
			return nil
		}
		onStack[b] = true
		defer delete(onStack, b)
		// Deduplicate successors (a branch with both arms to the same block
		// contributes one path continuation per distinct target).
		seen := map[*Block]bool{}
		for _, s := range b.Term.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if err := walk(s, acc); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	return clocks, nil
}

// ClockStats summarizes a set of path clocks.
type ClockStats struct {
	Mean   float64
	Std    float64
	Range  int64 // max - min
	Min    int64
	Max    int64
	NPaths int
}

// Stats computes mean, population standard deviation and range.
func Stats(clocks []int64) ClockStats {
	if len(clocks) == 0 {
		return ClockStats{}
	}
	st := ClockStats{Min: clocks[0], Max: clocks[0], NPaths: len(clocks)}
	var sum float64
	for _, c := range clocks {
		sum += float64(c)
		if c < st.Min {
			st.Min = c
		}
		if c > st.Max {
			st.Max = c
		}
	}
	st.Mean = sum / float64(len(clocks))
	var ss float64
	for _, c := range clocks {
		d := float64(c) - st.Mean
		ss += d * d
	}
	st.Std = sqrt(ss / float64(len(clocks)))
	st.Range = st.Max - st.Min
	return st
}

// sqrt is Newton's method on float64; avoids importing math in this package's
// hot path and keeps results deterministic across platforms for the small
// magnitudes involved.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		nz := 0.5 * (z + x/z)
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

// MeetsClockableCriteria applies the paper's isClockable admission test
// (Figure 4): range ≤ mean/2.5 and σ ≤ mean/5.
func MeetsClockableCriteria(st ClockStats) bool {
	if st.NPaths == 0 || st.Mean <= 0 {
		return false
	}
	if float64(st.Range) > st.Mean/2.5 {
		return false
	}
	if st.Std > st.Mean/5 {
		return false
	}
	return true
}
