package ir

import (
	"fmt"
	"strings"
)

// Textual IR format. The printer and parser round-trip: Parse(m.String())
// reproduces an equivalent module. cmd/detviz uses the printer with clock
// annotations to reproduce the paper's Figures 3–13.

// String renders the module in the textual format.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	if m.NumLocks > 0 {
		fmt.Fprintf(&sb, "locks %d\n", m.NumLocks)
	}
	if m.NumBars > 0 {
		fmt.Fprintf(&sb, "barriers %d\n", m.NumBars)
	}
	for _, g := range m.Globals {
		if len(g.Init) == 0 {
			fmt.Fprintf(&sb, "global %s %d\n", g.Name, g.Size)
			continue
		}
		fmt.Fprintf(&sb, "global %s %d =", g.Name, g.Size)
		for i, v := range g.Init {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, " %d", v)
		}
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		sb.WriteByte('\n')
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i := 0; i < f.NumParams; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d", i)
	}
	fmt.Fprintf(&sb, ") regs %d {\n", f.NumRegs)
	for _, b := range f.Blocks {
		sb.WriteString(b.String())
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one block with its clock annotation.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:", b.Name)
	if b.Clock != 0 {
		fmt.Fprintf(&sb, "    ; clock=%d", b.Clock)
	}
	if b.Unclockable {
		sb.WriteString("    ; unclockable")
	}
	sb.WriteByte('\n')
	for i := range b.Instrs {
		fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
	}
	fmt.Fprintf(&sb, "  %s\n", b.Term.String())
	return sb.String()
}

// String renders one instruction.
func (ins *Instr) String() string {
	switch {
	case ins.Op == OpConst:
		return fmt.Sprintf("r%d = const %d", ins.Dst, ins.A.Imm)
	case ins.Op.IsUnary():
		return fmt.Sprintf("r%d = %s %s", ins.Dst, ins.Op, ins.A)
	case ins.Op.IsBinary():
		return fmt.Sprintf("r%d = %s %s, %s", ins.Dst, ins.Op, ins.A, ins.B)
	case ins.Op == OpLoad:
		return fmt.Sprintf("r%d = load %s[%s]", ins.Dst, ins.Sym, ins.A)
	case ins.Op == OpStore:
		return fmt.Sprintf("store %s[%s], %s", ins.Sym, ins.A, ins.B)
	case ins.Op == OpCall:
		var args []string
		for _, a := range ins.Args {
			args = append(args, a.String())
		}
		call := fmt.Sprintf("call %s(%s)", ins.Callee, strings.Join(args, ", "))
		if ins.Dst == NoReg {
			return call
		}
		return fmt.Sprintf("r%d = %s", ins.Dst, call)
	case ins.Op == OpSpawn:
		var args []string
		for _, a := range ins.Args {
			args = append(args, a.String())
		}
		return fmt.Sprintf("r%d = spawn %s(%s)", ins.Dst, ins.Callee, strings.Join(args, ", "))
	case ins.Op == OpJoin:
		return fmt.Sprintf("join %s", ins.A)
	case ins.Op == OpLock:
		return fmt.Sprintf("lock %s", ins.A)
	case ins.Op == OpUnlock:
		return fmt.Sprintf("unlock %s", ins.A)
	case ins.Op == OpBarrier:
		return fmt.Sprintf("barrier %s", ins.A)
	case ins.Op == OpTid:
		return fmt.Sprintf("r%d = tid", ins.Dst)
	case ins.Op == OpNThreads:
		return fmt.Sprintf("r%d = nthreads", ins.Dst)
	case ins.Op == OpPrint:
		return fmt.Sprintf("print %s", ins.A)
	case ins.Op == OpClockAdd:
		if ins.Scale != 0 {
			return fmt.Sprintf("clockadd %d + %d*%s", ins.A.Imm, ins.Scale, ins.B)
		}
		return fmt.Sprintf("clockadd %d", ins.A.Imm)
	}
	return fmt.Sprintf("?%s", ins.Op)
}

// String renders the terminator.
func (t *Term) String() string {
	switch t.Kind {
	case TermJmp:
		return fmt.Sprintf("jmp %s", t.Succs[0].Name)
	case TermBr:
		return fmt.Sprintf("br %s, %s, %s", t.Cond, t.Succs[0].Name, t.Succs[1].Name)
	case TermSwitch:
		var cases []string
		for i, v := range t.Cases {
			cases = append(cases, fmt.Sprintf("%d: %s", v, t.Succs[i].Name))
		}
		return fmt.Sprintf("switch %s, [%s], %s",
			t.Cond, strings.Join(cases, ", "), t.Succs[len(t.Cases)].Name)
	case TermRet:
		return fmt.Sprintf("ret %s", t.Ret)
	}
	return "?term"
}
