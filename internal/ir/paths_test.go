package ir

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func clockFromField(b *Block) (int64, bool) {
	if b.Unclockable {
		return 0, false
	}
	return b.Clock, true
}

func TestFunctionPathClocksDiamond(t *testing.T) {
	_, f := buildDiamond(t)
	f.Block("entry").Clock = 2
	f.Block("then").Clock = 3
	f.Block("else").Clock = 5
	f.Block("merge").Clock = 1
	clocks, err := FunctionPathClocks(f, clockFromField)
	if err != nil {
		t.Fatalf("FunctionPathClocks: %v", err)
	}
	if len(clocks) != 2 {
		t.Fatalf("paths = %d, want 2", len(clocks))
	}
	sum := clocks[0] + clocks[1]
	if sum != (2+3+1)+(2+5+1) {
		t.Fatalf("path clocks %v", clocks)
	}
}

func TestFunctionPathClocksRejectsLoops(t *testing.T) {
	_, f := buildLoop(t)
	_, err := FunctionPathClocks(f, clockFromField)
	if !errors.Is(err, ErrHasLoop) {
		t.Fatalf("err = %v, want ErrHasLoop", err)
	}
}

func TestFunctionPathClocksRejectsUnclocked(t *testing.T) {
	_, f := buildDiamond(t)
	f.Block("else").Unclockable = true
	_, err := FunctionPathClocks(f, clockFromField)
	if !errors.Is(err, ErrUnclocked) {
		t.Fatalf("err = %v, want ErrUnclocked", err)
	}
}

func TestPathExplosionGuard(t *testing.T) {
	// Chain of k diamonds has 2^k paths; k=13 exceeds MaxPaths=4096.
	mb := NewModule("explode")
	fb := mb.Func("f")
	c := fb.Reg("c")
	for i := 0; i < 13; i++ {
		entry := blockName("d", i, "entry")
		then := blockName("d", i, "then")
		els := blockName("d", i, "else")
		merge := blockName("d", i, "merge")
		fb.Block(entry).Br(R(c), then, els)
		fb.Block(then).Jmp(merge)
		fb.Block(els).Jmp(merge)
		if i < 12 {
			fb.Block(merge).Jmp(blockName("d", i+1, "entry"))
		} else {
			fb.Block(merge).Ret(Imm(0))
		}
	}
	f := mb.M.Func("f")
	_, err := FunctionPathClocks(f, clockFromField)
	if !errors.Is(err, ErrTooManyPaths) {
		t.Fatalf("err = %v, want ErrTooManyPaths", err)
	}
}

func blockName(p string, i int, s string) string {
	return p + string(rune('a'+i)) + "." + s
}

func TestRegionPathClocksStops(t *testing.T) {
	_, f := buildDiamond(t)
	f.Block("entry").Clock = 2
	f.Block("then").Clock = 3
	f.Block("else").Clock = 5
	f.Block("merge").Clock = 100
	merge := f.Block("merge")
	clocks, err := RegionPathClocks(f.Entry(), func(b *Block) bool { return b == merge }, clockFromField)
	if err != nil {
		t.Fatalf("RegionPathClocks: %v", err)
	}
	// Paths stop at merge without counting its clock: 2+3 and 2+5.
	if len(clocks) != 2 {
		t.Fatalf("paths = %d", len(clocks))
	}
	if !(has(clocks, 5) && has(clocks, 7)) {
		t.Fatalf("clocks = %v, want {5,7}", clocks)
	}
}

func has(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestStats(t *testing.T) {
	st := Stats([]int64{37, 38, 38, 29})
	if st.Min != 29 || st.Max != 38 || st.Range != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Mean-35.5) > 1e-9 {
		t.Fatalf("mean = %v", st.Mean)
	}
	// Population std of {37,38,38,29}: mean 35.5, deviations {1.5,2.5,2.5,-6.5}.
	want := math.Sqrt((1.5*1.5 + 2.5*2.5 + 2.5*2.5 + 6.5*6.5) / 4)
	if math.Abs(st.Std-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", st.Std, want)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.NPaths != 0 || st.Mean != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if MeetsClockableCriteria(st) {
		t.Fatalf("empty stats should not be clockable")
	}
}

func TestMeetsClockableCriteria(t *testing.T) {
	// Paper example (§IV-C): clocks {37,38,38,29}: mean 35.5, range 9 <
	// 35.5/2.5=14.2, std 4.36... wait paper says 4.36 < 35.5/5=7.1: clockable.
	if !MeetsClockableCriteria(Stats([]int64{37, 38, 38, 29})) {
		t.Fatalf("paper O3 example should be clockable")
	}
	// Wildly divergent paths: not clockable.
	if MeetsClockableCriteria(Stats([]int64{10, 100})) {
		t.Fatalf("divergent paths should not be clockable")
	}
	// Single path always clockable (range 0, std 0) given positive mean.
	if !MeetsClockableCriteria(Stats([]int64{42})) {
		t.Fatalf("single path should be clockable")
	}
	// Zero-mean paths rejected.
	if MeetsClockableCriteria(Stats([]int64{0, 0})) {
		t.Fatalf("zero-clock paths should not be clockable")
	}
}

func TestSqrtMatchesMath(t *testing.T) {
	f := func(x uint32) bool {
		v := float64(x) / 16.0
		got := sqrt(v)
		want := math.Sqrt(v)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: for loop-free CFGs built as chains of diamonds, the number of
// enumerated paths is 2^k and every path clock equals entry+merge chain sum
// plus one arm per diamond.
func TestPathEnumerationProperty(t *testing.T) {
	f := func(armsRaw []bool) bool {
		k := len(armsRaw)
		if k == 0 || k > 8 {
			return true // skip degenerate/explosive sizes
		}
		mb := NewModule("p")
		fb := mb.Func("f")
		c := fb.Reg("c")
		for i := 0; i < k; i++ {
			entry := blockName("d", i, "entry")
			then := blockName("d", i, "then")
			els := blockName("d", i, "else")
			merge := blockName("d", i, "merge")
			fb.Block(entry).Br(R(c), then, els)
			fb.Block(then).Jmp(merge)
			fb.Block(els).Jmp(merge)
			if i < k-1 {
				fb.Block(merge).Jmp(blockName("d", i+1, "entry"))
			} else {
				fb.Block(merge).Ret(Imm(0))
			}
		}
		fn := mb.M.Func("f")
		for i := 0; i < k; i++ {
			fn.Block(blockName("d", i, "then")).Clock = 1
			fn.Block(blockName("d", i, "else")).Clock = 2
		}
		clocks, err := FunctionPathClocks(fn, clockFromField)
		if err != nil {
			return false
		}
		if len(clocks) != 1<<k {
			return false
		}
		// Each path clock is between k (all then) and 2k (all else).
		for _, pc := range clocks {
			if pc < int64(k) || pc > int64(2*k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
