// Package ir implements the small compiler intermediate representation that
// the DetLock pass operates on.
//
// The paper's DetLock pass runs on LLVM IR; this package provides the
// equivalent substrate: functions made of basic blocks holding register
// instructions, an explicit control-flow graph with dominators and natural
// loops, a cost model mapping instructions to logical-clock units, a textual
// format, and path-enumeration utilities used by the clockability analyses
// (Optimizations 1 and 3 of the paper).
//
// The IR is deliberately register-based and non-SSA: each function owns a
// flat register file, which keeps the interpreter simple and keeps the clock
// optimizations — which only read block structure, calls, dominators and
// loops — faithful to the paper's pseudocode.
package ir

import (
	"fmt"
	"strings"
)

// Op identifies an instruction opcode.
type Op uint8

// Instruction opcodes. Arithmetic is over int64. Comparison ops produce 0/1.
const (
	OpConst    Op = iota // Dst = A.Imm
	OpMov                // Dst = A
	OpAdd                // Dst = A + B
	OpSub                // Dst = A - B
	OpMul                // Dst = A * B
	OpDiv                // Dst = A / B (0 if B == 0)
	OpMod                // Dst = A % B (0 if B == 0)
	OpAnd                // Dst = A & B
	OpOr                 // Dst = A | B
	OpXor                // Dst = A ^ B
	OpShl                // Dst = A << (B & 63)
	OpShr                // Dst = A >> (B & 63) (arithmetic)
	OpNeg                // Dst = -A
	OpNot                // Dst = ^A
	OpEQ                 // Dst = A == B
	OpNE                 // Dst = A != B
	OpLT                 // Dst = A < B
	OpLE                 // Dst = A <= B
	OpGT                 // Dst = A > B
	OpGE                 // Dst = A >= B
	OpLoad               // Dst = mem[Sym][A]
	OpStore              // mem[Sym][A] = B
	OpCall               // Dst = Callee(Args...)
	OpLock               // acquire mutex A (deterministic under DetLock runtime)
	OpUnlock             // release mutex A
	OpBarrier            // barrier A
	OpTid                // Dst = thread id
	OpNThreads           // Dst = number of threads
	OpPrint              // append A to the thread's output log
	OpClockAdd           // logical clock += A.Imm + Scale*B  (inserted by the pass)
	OpSpawn              // Dst = handle of a new thread running Callee(Args...)
	OpJoin               // wait for thread handle A to finish
	opMax
)

var opNames = [opMax]string{
	OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpEQ: "eq", OpNE: "ne", OpLT: "lt", OpLE: "le", OpGT: "gt", OpGE: "ge",
	OpLoad: "load", OpStore: "store", OpCall: "call",
	OpLock: "lock", OpUnlock: "unlock", OpBarrier: "barrier",
	OpTid: "tid", OpNThreads: "nthreads", OpPrint: "print",
	OpClockAdd: "clockadd", OpSpawn: "spawn", OpJoin: "join",
}

// String returns the assembly mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBinary reports whether the op takes two value operands A and B.
func (o Op) IsBinary() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE:
		return true
	}
	return false
}

// IsUnary reports whether the op takes a single value operand A.
func (o Op) IsUnary() bool {
	switch o {
	case OpMov, OpNeg, OpNot:
		return true
	}
	return false
}

// IsCompare reports whether the op is a comparison producing 0 or 1.
func (o Op) IsCompare() bool {
	switch o {
	case OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE:
		return true
	}
	return false
}

// HasDst reports whether the instruction writes a destination register.
func (o Op) HasDst() bool {
	switch o {
	case OpStore, OpLock, OpUnlock, OpBarrier, OpPrint, OpClockAdd, OpJoin:
		return false
	}
	return true
}

// Reg is an index into a function's register file. NoReg marks "no register".
type Reg int32

// NoReg is the sentinel for an absent register (e.g. a discarded call result).
const NoReg Reg = -1

// Operand is either a register reference or an immediate value.
type Operand struct {
	Reg   Reg
	Imm   int64
	IsImm bool
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Imm: v, IsImm: true, Reg: NoReg} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("%d", o.Imm)
	}
	return fmt.Sprintf("r%d", o.Reg)
}

// Instr is a single (non-terminator) instruction.
//
// Field use by opcode:
//
//	binary ops    Dst, A, B
//	unary ops     Dst, A
//	OpConst       Dst, A.Imm
//	OpLoad        Dst, Sym, A (index)
//	OpStore       Sym, A (index), B (value)
//	OpCall        Dst (may be NoReg), Callee, Args
//	OpLock etc.   A (object id)
//	OpClockAdd    A.Imm (static amount), optionally Scale and B (dynamic term)
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Operand
	Sym    string    // global symbol for load/store
	Callee string    // function or builtin name for call
	Args   []Operand // call arguments
	Scale  int64     // clockadd dynamic multiplier (clock += A.Imm + Scale*B)
}

// TermKind discriminates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	TermJmp    TermKind = iota // unconditional jump to Succs[0]
	TermBr                     // conditional: Cond != 0 -> Succs[0], else Succs[1]
	TermSwitch                 // Cond == Cases[i] -> Succs[i]; default Succs[len(Cases)]
	TermRet                    // return Ret
)

// Term is a block terminator. Succs lists successor blocks in decision order.
type Term struct {
	Kind  TermKind
	Cond  Operand
	Cases []int64
	Succs []*Block
	Ret   Operand
}

// Block is a basic block: a straight-line instruction list plus a terminator.
type Block struct {
	Name   string
	Index  int // position within Func.Blocks, maintained by Func
	Func   *Func
	Instrs []Instr
	Term   Term

	// Clock is the pass-managed logical-clock value charged to this block.
	// It is populated by the DetLock pass (package core) from the cost model
	// and then shuffled around by the optimizations; instrumentation finally
	// materializes it as an OpClockAdd instruction.
	Clock int64

	// Unclockable marks blocks containing calls to unclocked functions (or
	// dynamic-cost builtins); the paper's optimizations skip such blocks.
	Unclockable bool
}

// Succs returns the block's successors (aliasing the terminator's slice).
func (b *Block) Succs() []*Block { return b.Term.Succs }

// HasCall reports whether the block contains any call instruction.
func (b *Block) HasCall() bool {
	for i := range b.Instrs {
		if b.Instrs[i].Op == OpCall {
			return true
		}
	}
	return false
}

// Calls returns the callee names appearing in the block, in order.
func (b *Block) Calls() []string {
	var out []string
	for i := range b.Instrs {
		if b.Instrs[i].Op == OpCall {
			out = append(out, b.Instrs[i].Callee)
		}
	}
	return out
}

// Func is a function: named, with NumParams parameters (registers 0..NumParams-1),
// a register file of NumRegs registers, and a list of basic blocks whose first
// element is the entry block.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []*Block
	Module    *Module

	// RegNames optionally maps registers to source-level names (debugging).
	RegNames []string
}

// Entry returns the function's entry block, or nil if the function is empty.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Block returns the block with the given name, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// reindex refreshes Block.Index after structural edits.
func (f *Func) reindex() {
	for i, b := range f.Blocks {
		b.Index = i
		b.Func = f
	}
}

// InsertBlockAfter inserts nb immediately after b in the block list.
func (f *Func) InsertBlockAfter(b, nb *Block) {
	at := b.Index + 1
	f.Blocks = append(f.Blocks, nil)
	copy(f.Blocks[at+1:], f.Blocks[at:])
	f.Blocks[at] = nb
	f.reindex()
}

// HasLoops reports whether the function's CFG contains a back edge.
func (f *Func) HasLoops() bool {
	return len(NewLoopInfo(f).BackEdges) > 0
}

// Global is a module-level memory region of Size int64 words, optionally with
// initial data (zero-extended to Size).
type Global struct {
	Name string
	Size int64
	Init []int64
}

// Module is a compilation unit: functions plus global memory regions and the
// number of synchronization objects the program uses.
type Module struct {
	Name     string
	Funcs    []*Func
	Globals  []*Global
	NumLocks int // number of mutex objects (lock ids are 0..NumLocks-1)
	NumBars  int // number of barrier objects
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddGlobal defines (or resizes) a global region and returns it.
func (m *Module) AddGlobal(name string, size int64) *Global {
	if g := m.Global(name); g != nil {
		if size > g.Size {
			g.Size = size
		}
		return g
	}
	g := &Global{Name: name, Size: size}
	m.Globals = append(m.Globals, g)
	return g
}

// Clone deep-copies the module. The DetLock pass mutates block structure and
// clock metadata, so experiments instrument a clone per configuration.
func (m *Module) Clone() *Module {
	nm := &Module{Name: m.Name, NumLocks: m.NumLocks, NumBars: m.NumBars}
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Size: g.Size}
		ng.Init = append(ng.Init, g.Init...)
		nm.Globals = append(nm.Globals, ng)
	}
	for _, f := range m.Funcs {
		nf := &Func{
			Name:      f.Name,
			NumParams: f.NumParams,
			NumRegs:   f.NumRegs,
			Module:    nm,
		}
		nf.RegNames = append(nf.RegNames, f.RegNames...)
		blockMap := make(map[*Block]*Block, len(f.Blocks))
		for _, b := range f.Blocks {
			nb := &Block{
				Name:        b.Name,
				Func:        nf,
				Clock:       b.Clock,
				Unclockable: b.Unclockable,
			}
			nb.Instrs = make([]Instr, len(b.Instrs))
			for i, ins := range b.Instrs {
				nins := ins
				nins.Args = append([]Operand(nil), ins.Args...)
				nb.Instrs[i] = nins
			}
			nb.Term = Term{
				Kind:  b.Term.Kind,
				Cond:  b.Term.Cond,
				Ret:   b.Term.Ret,
				Cases: append([]int64(nil), b.Term.Cases...),
			}
			blockMap[b] = nb
			nf.Blocks = append(nf.Blocks, nb)
		}
		for _, b := range f.Blocks {
			nb := blockMap[b]
			for _, s := range b.Term.Succs {
				nb.Term.Succs = append(nb.Term.Succs, blockMap[s])
			}
		}
		nf.reindex()
		nm.Funcs = append(nm.Funcs, nf)
	}
	return nm
}

// TotalBlockClock sums Block.Clock over all blocks of all functions; used by
// pass statistics and conservation tests.
func (m *Module) TotalBlockClock() int64 {
	var t int64
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			t += b.Clock
		}
	}
	return t
}

// uniqueBlockName derives an unused block name from base.
func uniqueBlockName(f *Func, base string) string {
	if f.Block(base) == nil {
		return base
	}
	for i := 1; ; i++ {
		n := fmt.Sprintf("%s.%d", base, i)
		if f.Block(n) == nil {
			return n
		}
	}
}

// SplitAt splits block b at instruction index i (instructions [i:] move to a
// new block). The new block inherits b's terminator and successors; b jumps
// to it. Returns the new block. Clock metadata stays with b; callers decide
// how to redistribute.
func (f *Func) SplitAt(b *Block, i int, nameHint string) *Block {
	if nameHint == "" {
		nameHint = "split." + b.Name
	}
	nb := &Block{
		Name: uniqueBlockName(f, nameHint),
		Func: f,
	}
	nb.Instrs = append(nb.Instrs, b.Instrs[i:]...)
	b.Instrs = b.Instrs[:i:i]
	nb.Term = b.Term
	b.Term = Term{Kind: TermJmp, Succs: []*Block{nb}}
	f.InsertBlockAfter(b, nb)
	return nb
}

// sanitizeName restricts names to the identifier charset accepted by the
// textual parser, mapping other runes to '_'.
func sanitizeName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == '.', r == '$':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
