package ir

import (
	"strings"
	"testing"
)

// buildDiamond returns a function with the classic if/else diamond:
// entry -> {then, else} -> merge(ret).
func buildDiamond(t *testing.T) (*Module, *Func) {
	t.Helper()
	mb := NewModule("diamond")
	fb := mb.Func("f", "x")
	x := fb.Reg("x")
	c := fb.Reg("c")
	y := fb.Reg("y")
	fb.Block("entry").
		Bin(OpLT, c, R(x), Imm(10)).
		Br(R(c), "then", "else")
	fb.Block("then").
		Bin(OpAdd, y, R(x), Imm(1)).
		Jmp("merge")
	fb.Block("else").
		Bin(OpSub, y, R(x), Imm(1)).
		Jmp("merge")
	fb.Block("merge").Ret(R(y))
	if err := mb.M.Verify(nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return mb.M, mb.M.Func("f")
}

// buildLoop returns: entry -> header -> {body -> latch -> header, exit}.
func buildLoop(t *testing.T) (*Module, *Func) {
	t.Helper()
	mb := NewModule("loop")
	fb := mb.Func("f", "n")
	n := fb.Reg("n")
	i := fb.Reg("i")
	c := fb.Reg("c")
	s := fb.Reg("s")
	fb.Block("entry").Const(i, 0).Const(s, 0).Jmp("header")
	fb.Block("header").Bin(OpLT, c, R(i), R(n)).Br(R(c), "body", "exit")
	fb.Block("body").Bin(OpAdd, s, R(s), R(i)).Jmp("latch")
	fb.Block("latch").Bin(OpAdd, i, R(i), Imm(1)).Jmp("header")
	fb.Block("exit").Ret(R(s))
	if err := mb.M.Verify(nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return mb.M, mb.M.Func("f")
}

func TestBuilderBasics(t *testing.T) {
	_, f := buildDiamond(t)
	if f.Entry().Name != "entry" {
		t.Fatalf("entry = %q", f.Entry().Name)
	}
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	if f.NumParams != 1 {
		t.Fatalf("params = %d", f.NumParams)
	}
	if got := len(f.Entry().Succs()); got != 2 {
		t.Fatalf("entry succs = %d", got)
	}
}

func TestPreds(t *testing.T) {
	_, f := buildDiamond(t)
	preds := Preds(f)
	merge := f.Block("merge")
	if got := len(preds[merge.Index]); got != 2 {
		t.Fatalf("merge preds = %d, want 2", got)
	}
	if got := len(preds[f.Entry().Index]); got != 0 {
		t.Fatalf("entry preds = %d, want 0", got)
	}
}

func TestReversePostorder(t *testing.T) {
	_, f := buildDiamond(t)
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo len = %d", len(rpo))
	}
	if rpo[0].Name != "entry" {
		t.Fatalf("rpo[0] = %q", rpo[0].Name)
	}
	if rpo[len(rpo)-1].Name != "merge" {
		t.Fatalf("rpo last = %q", rpo[len(rpo)-1].Name)
	}
}

func TestDominators(t *testing.T) {
	_, f := buildDiamond(t)
	dt := NewDomTree(f)
	entry := f.Block("entry")
	then := f.Block("then")
	els := f.Block("else")
	merge := f.Block("merge")
	if dt.Idom(entry) != nil {
		t.Fatalf("entry idom should be nil")
	}
	if dt.Idom(then) != entry || dt.Idom(els) != entry {
		t.Fatalf("then/else idom should be entry")
	}
	if dt.Idom(merge) != entry {
		t.Fatalf("merge idom = %v, want entry", dt.Idom(merge).Name)
	}
	if !dt.Dominates(entry, merge) {
		t.Fatalf("entry should dominate merge")
	}
	if dt.Dominates(then, merge) {
		t.Fatalf("then should not dominate merge")
	}
	if !dt.Dominates(merge, merge) {
		t.Fatalf("dominance should be reflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	_, f := buildLoop(t)
	dt := NewDomTree(f)
	header := f.Block("header")
	body := f.Block("body")
	latch := f.Block("latch")
	exit := f.Block("exit")
	if !dt.Dominates(header, body) || !dt.Dominates(header, latch) || !dt.Dominates(header, exit) {
		t.Fatalf("header should dominate loop body and exit")
	}
	if dt.Dominates(body, header) {
		t.Fatalf("body should not dominate header")
	}
}

func TestLoopInfo(t *testing.T) {
	_, f := buildLoop(t)
	li := NewLoopInfo(f)
	if len(li.BackEdges) != 1 {
		t.Fatalf("back edges = %d, want 1", len(li.BackEdges))
	}
	be := li.BackEdges[0]
	if be.From.Name != "latch" || be.To.Name != "header" {
		t.Fatalf("back edge %s->%s", be.From.Name, be.To.Name)
	}
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d", len(li.Loops))
	}
	l := li.Loops[0]
	for _, name := range []string{"header", "body", "latch"} {
		if !l.Contains(f.Block(name)) {
			t.Fatalf("loop should contain %s", name)
		}
	}
	if l.Contains(f.Block("exit")) || l.Contains(f.Block("entry")) {
		t.Fatalf("loop should not contain entry/exit")
	}
	if li.Depth(f.Block("body")) != 1 || li.Depth(f.Block("exit")) != 0 {
		t.Fatalf("bad loop depths")
	}
	if !li.IsHeader(f.Block("header")) || li.IsHeader(f.Block("body")) {
		t.Fatalf("bad header detection")
	}
	if !li.IsBackEdge(f.Block("latch"), f.Block("header")) {
		t.Fatalf("IsBackEdge false for latch->header")
	}
}

func TestNestedLoopDepth(t *testing.T) {
	mb := NewModule("nest")
	fb := mb.Func("f")
	c := fb.Reg("c")
	fb.Block("entry").Jmp("outer")
	fb.Block("outer").Bin(OpLT, c, Imm(0), Imm(1)).Br(R(c), "inner", "exit")
	fb.Block("inner").Br(R(c), "inner.latch", "outer.latch")
	fb.Block("inner.latch").Jmp("inner")
	fb.Block("outer.latch").Jmp("outer")
	fb.Block("exit").Ret(Imm(0))
	f := mb.M.Func("f")
	li := NewLoopInfo(f)
	if got := li.Depth(f.Block("inner")); got != 2 {
		t.Fatalf("inner depth = %d, want 2", got)
	}
	if got := li.Depth(f.Block("outer")); got != 1 {
		t.Fatalf("outer depth = %d, want 1", got)
	}
}

func TestHasLoops(t *testing.T) {
	_, f1 := buildDiamond(t)
	if f1.HasLoops() {
		t.Fatalf("diamond should be loop-free")
	}
	_, f2 := buildLoop(t)
	if !f2.HasLoops() {
		t.Fatalf("loop function should have loops")
	}
}

func TestSplitAt(t *testing.T) {
	_, f := buildDiamond(t)
	entry := f.Entry()
	nb := f.SplitAt(entry, 1, "")
	if len(entry.Instrs) != 1 {
		t.Fatalf("entry kept %d instrs", len(entry.Instrs))
	}
	if entry.Term.Kind != TermJmp || entry.Term.Succs[0] != nb {
		t.Fatalf("entry should jmp to split block")
	}
	if nb.Term.Kind != TermBr {
		t.Fatalf("split block should inherit br terminator")
	}
	if f.Blocks[1] != nb {
		t.Fatalf("split block should be inserted after entry")
	}
	if err := f.Module.Verify(nil); err != nil {
		t.Fatalf("Verify after split: %v", err)
	}
}

func TestSplitAtZeroKeepsEmptyBlock(t *testing.T) {
	_, f := buildDiamond(t)
	entry := f.Entry()
	nb := f.SplitAt(entry, 0, "tail")
	if len(entry.Instrs) != 0 {
		t.Fatalf("entry should be empty after split at 0")
	}
	if len(nb.Instrs) != 1 {
		t.Fatalf("tail should hold the instruction")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, f := buildDiamond(t)
	f.Entry().Clock = 42
	clone := m.Clone()
	cf := clone.Func("f")
	if cf == f {
		t.Fatalf("clone returned same function")
	}
	if cf.Entry().Clock != 42 {
		t.Fatalf("clone lost clock metadata")
	}
	cf.Entry().Clock = 7
	cf.Entry().Instrs[0].A = Imm(99)
	if f.Entry().Clock != 42 {
		t.Fatalf("clone mutation leaked into original clock")
	}
	if f.Entry().Instrs[0].A.Imm == 99 {
		t.Fatalf("clone mutation leaked into original instrs")
	}
	// Successor pointers must point into the clone, not the original.
	for _, b := range cf.Blocks {
		for _, s := range b.Term.Succs {
			if s.Func != cf {
				t.Fatalf("clone successor %q points outside clone", s.Name)
			}
		}
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	add := Instr{Op: OpAdd}
	if cm.InstrCost(&add) != 1 {
		t.Fatalf("add cost = %d", cm.InstrCost(&add))
	}
	div := Instr{Op: OpDiv}
	if cm.InstrCost(&div) != 12 {
		t.Fatalf("div cost = %d", cm.InstrCost(&div))
	}
	ca := Instr{Op: OpClockAdd, A: Imm(100)}
	if cm.InstrCost(&ca) != 0 {
		t.Fatalf("clockadd logical cost should be 0")
	}
	if cm.PhysicalInstrCost(&ca) != cm.ClockUpdateCost {
		t.Fatalf("clockadd physical cost should be ClockUpdateCost")
	}
	_, f := buildDiamond(t)
	got := cm.BlockCost(f.Entry())
	// entry: lt (1) + br (1) = 2
	if got != 2 {
		t.Fatalf("entry block cost = %d, want 2", got)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	mb := NewModule("bad")
	fb := mb.Func("f")
	r := fb.Reg("r")
	fb.Block("entry").
		Load(r, "nosuch", Imm(0)).
		Call(r, "missing").
		Ret(R(r))
	err := mb.M.Verify(nil)
	if err == nil {
		t.Fatalf("Verify should fail")
	}
	msg := err.Error()
	for _, want := range []string{"undefined global", "undefined function"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestVerifyBuiltinAllowed(t *testing.T) {
	mb := NewModule("b")
	fb := mb.Func("f")
	r := fb.Reg("r")
	fb.Block("entry").Call(r, "memset", Imm(0), Imm(100)).Ret(R(r))
	if err := mb.M.Verify(func(n string) bool { return n == "memset" }); err != nil {
		t.Fatalf("builtin call should verify: %v", err)
	}
	if err := mb.M.Verify(nil); err == nil {
		t.Fatalf("without builtins, call should fail verification")
	}
}

func TestVerifyArgCount(t *testing.T) {
	mb := NewModule("argc")
	g := mb.Func("g", "a", "b")
	g.Block("entry").Ret(Imm(0))
	fb := mb.Func("f")
	r := fb.Reg("r")
	fb.Block("entry").Call(r, "g", Imm(1)).Ret(R(r))
	if err := mb.M.Verify(nil); err == nil || !strings.Contains(err.Error(), "wants 2") {
		t.Fatalf("arity mismatch not caught: %v", err)
	}
}

func TestVerifyLockRange(t *testing.T) {
	mb := NewModule("locks")
	mb.Locks(2)
	fb := mb.Func("f")
	fb.Block("entry").Lock(Imm(5)).Ret(Imm(0))
	if err := mb.M.Verify(nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("lock range not caught: %v", err)
	}
}

func TestUniqueBlockNames(t *testing.T) {
	_, f := buildDiamond(t)
	b1 := f.SplitAt(f.Entry(), 0, "then")
	if b1.Name == "then" {
		t.Fatalf("split block stole existing name")
	}
}

func TestTotalBlockClock(t *testing.T) {
	m, f := buildDiamond(t)
	f.Block("then").Clock = 5
	f.Block("else").Clock = 7
	if got := m.TotalBlockClock(); got != 12 {
		t.Fatalf("TotalBlockClock = %d, want 12", got)
	}
}

func TestOperandString(t *testing.T) {
	if R(3).String() != "r3" {
		t.Fatalf("R(3) = %q", R(3))
	}
	if Imm(-7).String() != "-7" {
		t.Fatalf("Imm(-7) = %q", Imm(-7))
	}
}

func TestSanitizeName(t *testing.T) {
	got := sanitizeName("_Z17intersection_typeP6 patch?")
	if strings.ContainsAny(got, " ?") {
		t.Fatalf("sanitize left bad runes: %q", got)
	}
}

func TestInsertBlockAfterMaintainsIndices(t *testing.T) {
	_, f := buildDiamond(t)
	nb := &Block{Name: "x", Func: f}
	nb.Term = Term{Kind: TermRet, Ret: Imm(0)}
	f.InsertBlockAfter(f.Blocks[1], nb)
	for i, b := range f.Blocks {
		if b.Index != i {
			t.Fatalf("block %q index %d at position %d", b.Name, b.Index, i)
		}
	}
}
