package ir

import (
	"strings"
	"testing"
)

const sampleSrc = `
module sample
locks 4
barriers 1
global grid 64
global table 3 = 10, 20, 30

func main() regs 6 {
entry:
  r0 = const 0
  r1 = tid
  r2 = nthreads
  jmp loop
loop:
  r3 = lt r0, 10
  br r3, body, done
body:
  r4 = load grid[r0]
  r5 = add r4, 1
  store grid[r0], r5
  lock 1
  unlock 1
  r0 = add r0, 1
  jmp loop
done:
  barrier 0
  print r0
  ret r0
}

func helper(r0, r1) regs 3 {
entry:
  r2 = mul r0, r1
  ret r2
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "sample" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.NumLocks != 4 || m.NumBars != 1 {
		t.Fatalf("locks=%d bars=%d", m.NumLocks, m.NumBars)
	}
	g := m.Global("table")
	if g == nil || g.Size != 3 || len(g.Init) != 3 || g.Init[2] != 30 {
		t.Fatalf("table global = %+v", g)
	}
	f := m.Func("main")
	if f == nil {
		t.Fatalf("main not found")
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("main blocks = %d", len(f.Blocks))
	}
	h := m.Func("helper")
	if h == nil || h.NumParams != 2 || h.NumRegs != 3 {
		t.Fatalf("helper = %+v", h)
	}
	if err := m.Verify(nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	m1 := MustParse(sampleSrc)
	text1 := m1.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := m2.String()
	if text1 != text2 {
		t.Fatalf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseSwitch(t *testing.T) {
	src := `
module sw
func f(r0) regs 2 {
entry:
  switch r0, [0: zero, 1: one], other
zero:
  ret 100
one:
  ret 200
other:
  ret 300
}
`
	m := MustParse(src)
	f := m.Func("f")
	term := f.Entry().Term
	if term.Kind != TermSwitch {
		t.Fatalf("kind = %v", term.Kind)
	}
	if len(term.Cases) != 2 || len(term.Succs) != 3 {
		t.Fatalf("cases=%d succs=%d", len(term.Cases), len(term.Succs))
	}
	if term.Succs[2].Name != "other" {
		t.Fatalf("default = %q", term.Succs[2].Name)
	}
	// Round trip through text.
	m2 := MustParse(m.String())
	if m2.Func("f").Entry().Term.Kind != TermSwitch {
		t.Fatalf("switch lost in round trip")
	}
}

func TestParseClockAdd(t *testing.T) {
	src := `
module ca
func f(r0) regs 2 {
entry:
  clockadd 35
  clockadd 10 + 4*r0
  ret 0
}
`
	m := MustParse(src)
	ins := m.Func("f").Entry().Instrs
	if len(ins) != 2 {
		t.Fatalf("instrs = %d", len(ins))
	}
	if ins[0].Op != OpClockAdd || ins[0].A.Imm != 35 || ins[0].Scale != 0 {
		t.Fatalf("static clockadd = %+v", ins[0])
	}
	if ins[1].A.Imm != 10 || ins[1].Scale != 4 || ins[1].B.Reg != 0 {
		t.Fatalf("dynamic clockadd = %+v", ins[1])
	}
	m2 := MustParse(m.String())
	ins2 := m2.Func("f").Entry().Instrs
	if ins2[1].Scale != 4 {
		t.Fatalf("dynamic clockadd lost in round trip")
	}
}

func TestParseCall(t *testing.T) {
	src := `
module c
func g(r0) regs 1 {
entry:
  ret r0
}
func f() regs 2 {
entry:
  r0 = call g(7)
  call g(r0)
  ret r0
}
`
	m := MustParse(src)
	if err := m.Verify(nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	ins := m.Func("f").Entry().Instrs
	if ins[0].Dst != 0 || ins[0].Callee != "g" || !ins[0].Args[0].IsImm {
		t.Fatalf("call = %+v", ins[0])
	}
	if ins[1].Dst != NoReg {
		t.Fatalf("void call dst = %v", ins[1].Dst)
	}
}

func TestParseComments(t *testing.T) {
	src := `
module c ; trailing comment
; full line comment
func f() regs 1 {   ; another
entry:  ; clock=99 annotations are ignored on reparse
  r0 = const 1 ; inline
  ret r0
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
	if len(m.Func("f").Entry().Instrs) != 1 {
		t.Fatalf("comment parsing broke instructions")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no module", "func f() {\nentry:\n ret 0\n}", "expected 'module"},
		{"bad op", "module m\nfunc f() regs 1 {\nentry:\n r0 = frob r0, r0\n ret 0\n}", "unknown op"},
		{"instr before label", "module m\nfunc f() regs 1 {\n r0 = const 1\n}", "before first block label"},
		{"bad operand", "module m\nfunc f() regs 1 {\nentry:\n r0 = add rX, 1\n ret 0\n}", "bad operand"},
		{"eof in func", "module m\nfunc f() regs 1 {\nentry:\n ret 0\n", "unexpected EOF"},
		{"bad global", "module m\nglobal g\n", "global wants"},
		{"switch no default", "module m\nfunc f() regs 1 {\nentry:\n switch r0, [0: a],\na:\n ret 0\n}", "missing default"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse should fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q missing %q", err, tc.want)
			}
		})
	}
}

func TestParseRegCountInference(t *testing.T) {
	src := `
module m
func f() {
entry:
  r5 = const 1
  ret r5
}
`
	m := MustParse(src)
	if got := m.Func("f").NumRegs; got != 6 {
		t.Fatalf("NumRegs = %d, want 6 (inferred from r5)", got)
	}
}
