package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR format produced by Module.String. It is used by
// cmd/detlock to load .dir program files and by round-trip tests.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	return p.parseModule()
}

// MustParse parses src and panics on error; for tests and embedded programs.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	lines []string
	pos   int
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("ir: parse error at line %d: %s", e.line, e.msg)
}

func (p *parser) errf(format string, args ...any) error {
	return &parseError{line: p.pos, msg: fmt.Sprintf(format, args...)}
}

// next returns the next significant line (comments and blanks stripped),
// or "" at EOF.
func (p *parser) next() string {
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		p.pos++
		if i := strings.Index(ln, ";"); i >= 0 {
			ln = ln[:i]
		}
		ln = strings.TrimSpace(ln)
		if ln != "" {
			return ln
		}
	}
	return ""
}

func (p *parser) parseModule() (*Module, error) {
	m := &Module{}
	ln := p.next()
	if !strings.HasPrefix(ln, "module ") {
		return nil, p.errf("expected 'module <name>', got %q", ln)
	}
	m.Name = strings.TrimSpace(strings.TrimPrefix(ln, "module "))
	for {
		ln = p.next()
		if ln == "" {
			break
		}
		switch {
		case strings.HasPrefix(ln, "locks "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(ln, "locks ")))
			if err != nil {
				return nil, p.errf("bad locks count: %v", err)
			}
			m.NumLocks = n
		case strings.HasPrefix(ln, "barriers "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(ln, "barriers ")))
			if err != nil {
				return nil, p.errf("bad barriers count: %v", err)
			}
			m.NumBars = n
		case strings.HasPrefix(ln, "global "):
			if err := p.parseGlobal(m, ln); err != nil {
				return nil, err
			}
		case strings.HasPrefix(ln, "func "):
			f, err := p.parseFunc(m, ln)
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, f)
		default:
			return nil, p.errf("unexpected line %q", ln)
		}
	}
	return m, nil
}

func (p *parser) parseGlobal(m *Module, ln string) error {
	rest := strings.TrimPrefix(ln, "global ")
	var initPart string
	if i := strings.Index(rest, "="); i >= 0 {
		initPart = strings.TrimSpace(rest[i+1:])
		rest = strings.TrimSpace(rest[:i])
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return p.errf("global wants 'global <name> <size>', got %q", ln)
	}
	size, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return p.errf("bad global size: %v", err)
	}
	g := m.AddGlobal(fields[0], size)
	if initPart != "" {
		for _, tok := range strings.Split(initPart, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				return p.errf("bad global initializer: %v", err)
			}
			g.Init = append(g.Init, v)
		}
	}
	return nil
}

// parseFunc parses "func name(r0, r1) regs N {" through the closing "}".
func (p *parser) parseFunc(m *Module, header string) (*Func, error) {
	open := strings.Index(header, "(")
	close := strings.Index(header, ")")
	if open < 0 || close < open {
		return nil, p.errf("bad func header %q", header)
	}
	f := &Func{Name: strings.TrimSpace(header[len("func "):open]), Module: m}
	params := strings.TrimSpace(header[open+1 : close])
	if params != "" {
		f.NumParams = len(strings.Split(params, ","))
	}
	rest := strings.TrimSpace(header[close+1:])
	rest = strings.TrimSuffix(rest, "{")
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "regs ") {
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(rest, "regs ")))
		if err != nil {
			return nil, p.errf("bad regs count: %v", err)
		}
		f.NumRegs = n
	} else {
		f.NumRegs = f.NumParams
	}

	// Buffer the body so labels can be pre-scanned: blocks must be created
	// in label order (not first-reference order) for printing to round-trip.
	var body []string
	bodyStart := p.pos
	for {
		ln := p.next()
		if ln == "" {
			return nil, p.errf("unexpected EOF in func %s", f.Name)
		}
		if ln == "}" {
			break
		}
		body = append(body, ln)
	}
	for _, ln := range body {
		if strings.HasSuffix(ln, ":") {
			name := strings.TrimSuffix(ln, ":")
			if f.Block(name) != nil {
				return nil, &parseError{line: bodyStart, msg: fmt.Sprintf("duplicate block label %q", name)}
			}
			b := &Block{Name: name, Func: f, Index: len(f.Blocks)}
			f.Blocks = append(f.Blocks, b)
		}
	}
	getBlock := func(name string) *Block {
		if b := f.Block(name); b != nil {
			return b
		}
		// Terminator target with no label in this function: create it so
		// verification reports it as an unterminated block.
		b := &Block{Name: name, Func: f, Index: len(f.Blocks)}
		f.Blocks = append(f.Blocks, b)
		return b
	}
	var cur *Block
	maxReg := Reg(f.NumRegs - 1)
	bump := func(r Reg) {
		if r > maxReg {
			maxReg = r
		}
	}
	for _, ln := range body {
		if strings.HasSuffix(ln, ":") {
			cur = f.Block(strings.TrimSuffix(ln, ":"))
			continue
		}
		if cur == nil {
			return nil, p.errf("instruction before first block label: %q", ln)
		}
		done, err := p.parseLine(f, cur, ln, getBlock, bump)
		if err != nil {
			return nil, err
		}
		_ = done
	}
	if int(maxReg)+1 > f.NumRegs {
		f.NumRegs = int(maxReg) + 1
	}
	f.reindex()
	return f, nil
}

// parseOperand parses "r3" or "-17".
func (p *parser) parseOperand(tok string) (Operand, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "r") {
		n, err := strconv.Atoi(tok[1:])
		if err == nil {
			return R(Reg(n)), nil
		}
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return Operand{}, p.errf("bad operand %q", tok)
	}
	return Imm(v), nil
}

func (p *parser) parseReg(tok string) (Reg, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "r") {
		return 0, p.errf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, p.errf("bad register %q", tok)
	}
	return Reg(n), nil
}

var textOps = map[string]Op{
	"mov": OpMov, "add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
	"mod": OpMod, "and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl,
	"shr": OpShr, "neg": OpNeg, "not": OpNot, "eq": OpEQ, "ne": OpNE,
	"lt": OpLT, "le": OpLE, "gt": OpGT, "ge": OpGE,
}

// parseLine parses one instruction or terminator line into cur.
func (p *parser) parseLine(f *Func, cur *Block, ln string, getBlock func(string) *Block, bump func(Reg)) (bool, error) {
	// Terminators.
	switch {
	case strings.HasPrefix(ln, "jmp "):
		cur.Term = Term{Kind: TermJmp, Succs: []*Block{getBlock(strings.TrimSpace(ln[4:]))}}
		return true, nil
	case strings.HasPrefix(ln, "br "):
		parts := strings.Split(ln[3:], ",")
		if len(parts) != 3 {
			return false, p.errf("br wants 'br cond, then, else': %q", ln)
		}
		cond, err := p.parseOperand(parts[0])
		if err != nil {
			return false, err
		}
		cur.Term = Term{Kind: TermBr, Cond: cond, Succs: []*Block{
			getBlock(strings.TrimSpace(parts[1])),
			getBlock(strings.TrimSpace(parts[2])),
		}}
		return true, nil
	case strings.HasPrefix(ln, "switch "):
		return true, p.parseSwitch(cur, ln, getBlock)
	case strings.HasPrefix(ln, "ret"):
		rest := strings.TrimSpace(strings.TrimPrefix(ln, "ret"))
		ret := Imm(0)
		if rest != "" {
			var err error
			ret, err = p.parseOperand(rest)
			if err != nil {
				return false, err
			}
		}
		cur.Term = Term{Kind: TermRet, Ret: ret}
		return true, nil
	}

	// Non-destination instructions.
	switch {
	case strings.HasPrefix(ln, "store "):
		rest := ln[len("store "):]
		ob := strings.Index(rest, "[")
		cb := strings.Index(rest, "]")
		if ob < 0 || cb < ob {
			return false, p.errf("store wants 'store sym[idx], val': %q", ln)
		}
		sym := strings.TrimSpace(rest[:ob])
		idx, err := p.parseOperand(rest[ob+1 : cb])
		if err != nil {
			return false, err
		}
		after := strings.TrimSpace(rest[cb+1:])
		after = strings.TrimPrefix(after, ",")
		val, err := p.parseOperand(after)
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpStore, Sym: sym, A: idx, B: val})
		return false, nil
	case strings.HasPrefix(ln, "lock "):
		a, err := p.parseOperand(ln[5:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpLock, A: a})
		return false, nil
	case strings.HasPrefix(ln, "unlock "):
		a, err := p.parseOperand(ln[7:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpUnlock, A: a})
		return false, nil
	case strings.HasPrefix(ln, "barrier "):
		a, err := p.parseOperand(ln[8:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpBarrier, A: a})
		return false, nil
	case strings.HasPrefix(ln, "join "):
		a, err := p.parseOperand(ln[5:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpJoin, A: a})
		return false, nil
	case strings.HasPrefix(ln, "print "):
		a, err := p.parseOperand(ln[6:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpPrint, A: a})
		return false, nil
	case strings.HasPrefix(ln, "clockadd "):
		return false, p.parseClockAdd(cur, ln[9:])
	case strings.HasPrefix(ln, "call "):
		ins, err := p.parseCall(NoReg, ln[5:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, ins)
		return false, nil
	}

	// Destination instructions: "rN = ...".
	eq := strings.Index(ln, "=")
	if eq < 0 {
		return false, p.errf("unrecognized instruction %q", ln)
	}
	dst, err := p.parseReg(ln[:eq])
	if err != nil {
		return false, err
	}
	bump(dst)
	rhs := strings.TrimSpace(ln[eq+1:])
	switch {
	case strings.HasPrefix(rhs, "const "):
		v, err := strconv.ParseInt(strings.TrimSpace(rhs[6:]), 10, 64)
		if err != nil {
			return false, p.errf("bad const: %v", err)
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: OpConst, Dst: dst, A: Imm(v)})
		return false, nil
	case rhs == "tid":
		cur.Instrs = append(cur.Instrs, Instr{Op: OpTid, Dst: dst})
		return false, nil
	case rhs == "nthreads":
		cur.Instrs = append(cur.Instrs, Instr{Op: OpNThreads, Dst: dst})
		return false, nil
	case strings.HasPrefix(rhs, "load "):
		rest := rhs[5:]
		ob := strings.Index(rest, "[")
		cb := strings.Index(rest, "]")
		if ob < 0 || cb < ob {
			return false, p.errf("load wants 'load sym[idx]': %q", ln)
		}
		idx, err := p.parseOperand(rest[ob+1 : cb])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, Instr{
			Op: OpLoad, Dst: dst, Sym: strings.TrimSpace(rest[:ob]), A: idx,
		})
		return false, nil
	case strings.HasPrefix(rhs, "call "):
		ins, err := p.parseCall(dst, rhs[5:])
		if err != nil {
			return false, err
		}
		cur.Instrs = append(cur.Instrs, ins)
		return false, nil
	case strings.HasPrefix(rhs, "spawn "):
		ins, err := p.parseCall(dst, rhs[6:])
		if err != nil {
			return false, err
		}
		ins.Op = OpSpawn
		cur.Instrs = append(cur.Instrs, ins)
		return false, nil
	}
	// Unary/binary mnemonics.
	sp := strings.Index(rhs, " ")
	if sp < 0 {
		return false, p.errf("unrecognized rhs %q", rhs)
	}
	op, ok := textOps[rhs[:sp]]
	if !ok {
		return false, p.errf("unknown op %q", rhs[:sp])
	}
	operands := strings.Split(rhs[sp+1:], ",")
	a, err := p.parseOperand(operands[0])
	if err != nil {
		return false, err
	}
	if op.IsUnary() {
		if len(operands) != 1 {
			return false, p.errf("%s wants one operand", op)
		}
		cur.Instrs = append(cur.Instrs, Instr{Op: op, Dst: dst, A: a})
		return false, nil
	}
	if len(operands) != 2 {
		return false, p.errf("%s wants two operands", op)
	}
	b, err := p.parseOperand(operands[1])
	if err != nil {
		return false, err
	}
	cur.Instrs = append(cur.Instrs, Instr{Op: op, Dst: dst, A: a, B: b})
	return false, nil
}

func (p *parser) parseCall(dst Reg, rest string) (Instr, error) {
	ob := strings.Index(rest, "(")
	cb := strings.LastIndex(rest, ")")
	if ob < 0 || cb < ob {
		return Instr{}, p.errf("call wants 'call fn(args)': %q", rest)
	}
	ins := Instr{Op: OpCall, Dst: dst, Callee: strings.TrimSpace(rest[:ob])}
	argstr := strings.TrimSpace(rest[ob+1 : cb])
	if argstr != "" {
		for _, tok := range strings.Split(argstr, ",") {
			a, err := p.parseOperand(tok)
			if err != nil {
				return Instr{}, err
			}
			ins.Args = append(ins.Args, a)
		}
	}
	return ins, nil
}

// parseClockAdd parses "35" or "35 + 4*r2".
func (p *parser) parseClockAdd(cur *Block, rest string) error {
	rest = strings.TrimSpace(rest)
	ins := Instr{Op: OpClockAdd}
	if i := strings.Index(rest, "+"); i >= 0 {
		base, err := strconv.ParseInt(strings.TrimSpace(rest[:i]), 10, 64)
		if err != nil {
			return p.errf("bad clockadd base: %v", err)
		}
		dyn := strings.TrimSpace(rest[i+1:])
		star := strings.Index(dyn, "*")
		if star < 0 {
			return p.errf("clockadd dynamic term wants 'k*rN': %q", dyn)
		}
		scale, err := strconv.ParseInt(strings.TrimSpace(dyn[:star]), 10, 64)
		if err != nil {
			return p.errf("bad clockadd scale: %v", err)
		}
		b, err := p.parseOperand(dyn[star+1:])
		if err != nil {
			return err
		}
		ins.A = Imm(base)
		ins.B = b
		ins.Scale = scale
	} else {
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return p.errf("bad clockadd amount: %v", err)
		}
		ins.A = Imm(v)
	}
	cur.Instrs = append(cur.Instrs, ins)
	return nil
}

func (p *parser) parseSwitch(cur *Block, ln string, getBlock func(string) *Block) error {
	rest := strings.TrimSpace(ln[len("switch "):])
	ob := strings.Index(rest, "[")
	cb := strings.Index(rest, "]")
	if ob < 0 || cb < ob {
		return p.errf("switch wants 'switch cond, [v: blk, ...], default': %q", ln)
	}
	condTok := strings.TrimSuffix(strings.TrimSpace(rest[:ob]), ",")
	cond, err := p.parseOperand(condTok)
	if err != nil {
		return err
	}
	t := Term{Kind: TermSwitch, Cond: cond}
	inner := strings.TrimSpace(rest[ob+1 : cb])
	if inner != "" {
		for _, pair := range strings.Split(inner, ",") {
			kv := strings.Split(pair, ":")
			if len(kv) != 2 {
				return p.errf("switch case wants 'v: blk': %q", pair)
			}
			v, err := strconv.ParseInt(strings.TrimSpace(kv[0]), 10, 64)
			if err != nil {
				return p.errf("bad switch case value: %v", err)
			}
			t.Cases = append(t.Cases, v)
			t.Succs = append(t.Succs, getBlock(strings.TrimSpace(kv[1])))
		}
	}
	def := strings.TrimSpace(rest[cb+1:])
	def = strings.TrimPrefix(def, ",")
	def = strings.TrimSpace(def)
	if def == "" {
		return p.errf("switch missing default target: %q", ln)
	}
	t.Succs = append(t.Succs, getBlock(def))
	cur.Term = t
	return nil
}
