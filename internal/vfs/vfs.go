// Package vfs is the minimal filesystem seam the durability layer writes
// through. The journal (internal/service) and every other crash-safety
// artifact perform their file I/O against the FS interface instead of the os
// package, so a test harness can stand between the service and the disk and
// inject the failures real disks produce — short writes, fsync errors,
// ENOSPC — without patching the code under test. internal/nemesis.FaultFS is
// that harness; OS is the production implementation and the package's only
// other export.
//
// The interface is deliberately tiny: exactly the operations the journal's
// crash-safety story uses (append, fsync, truncate-to-prefix, atomic
// temp-file-then-rename replacement, sidecar append, cleanup sweep). Growing
// it means growing the failure surface every FaultFS schedule must cover, so
// additions should be resisted until a caller genuinely needs them.
package vfs

import (
	"io"
	"os"
)

// FS is the filesystem surface durable state is written through.
type FS interface {
	// ReadFile reads the whole named file (os.ReadFile semantics: a missing
	// file returns an error for which os.IsNotExist holds).
	ReadFile(name string) ([]byte, error)
	// OpenFile opens name with os.OpenFile flag/perm semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (the commit point of
	// every temp-file-then-rename rewrite).
	Rename(oldpath, newpath string) error
	// Remove deletes name; removing a non-existent file is an error the
	// caller may ignore (cleanup sweeps do).
	Remove(name string) error
}

// File is one open file. The durability-relevant failure points — Write,
// Sync — are exactly where a fault-injecting implementation perturbs.
type File interface {
	io.Writer
	io.Closer
	// Sync is the fsync barrier: after a successful Sync every previously
	// written byte is durable.
	Sync() error
	// Truncate cuts the file to size (torn-tail repair).
	Truncate(size int64) error
	// Seek positions the write cursor (reopen-for-append).
	Seek(offset int64, whence int) (int64, error)
}

// OS is the production FS: a pass-through to the os package.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }
