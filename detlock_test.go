package detlock_test

import (
	"errors"
	"strings"
	"testing"

	detlock "repro"
)

const testProgram = `
module api_test
locks 1
global counter 1

func work(r0) regs 3 {
entry:
  r1 = and r0, 1
  br r1, a, b
a:
  r2 = add r0, 3
  ret r2
b:
  r2 = sub r0, 3
  ret r2
}

func main() regs 6 {
entry:
  r0 = const 0
  jmp loop
loop:
  r1 = lt r0, 20
  br r1, body, done
body:
  r2 = call work(r0)
  lock 0
  r3 = load counter[0]
  r3 = add r3, r2
  store counter[0], r3
  unlock 0
  r0 = add r0, 1
  jmp loop
done:
  print r0
  ret r0
}
`

func TestParseAndFormat(t *testing.T) {
	m, err := detlock.ParseProgram(testProgram)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	text := detlock.FormatProgram(m)
	m2, err := detlock.ParseProgram(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if detlock.FormatProgram(m2) != text {
		t.Fatalf("format not stable")
	}
}

func TestInstrumentAPI(t *testing.T) {
	m, _ := detlock.ParseProgram(testProgram)
	res, err := detlock.Instrument(m, detlock.AllOptimizations())
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if _, ok := res.Clockable["work"]; !ok {
		t.Fatalf("work should be clockable: %v", res.ClockableNames())
	}
}

func TestSimulateBaselineVsDet(t *testing.T) {
	m, _ := detlock.ParseProgram(testProgram)
	base, err := detlock.Simulate(m, detlock.SimConfig{Threads: 4})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if base.Acquisitions != 4*20 {
		t.Fatalf("acquisitions = %d, want 80", base.Acquisitions)
	}
	opt := detlock.AllOptimizations()
	det, err := detlock.Simulate(m, detlock.SimConfig{
		Threads: 4, Opt: &opt, Deterministic: true, RecordSchedule: true,
	})
	if err != nil {
		t.Fatalf("Simulate det: %v", err)
	}
	if det.Cycles < base.Cycles {
		t.Fatalf("det run faster than baseline")
	}
	if det.Schedule == nil || det.Schedule.Len() != 80 {
		t.Fatalf("schedule not recorded")
	}
	if det.ClockUpdates == 0 {
		t.Fatalf("no clock updates executed")
	}
	// Every thread printed its loop count.
	for tid, out := range det.Output {
		if len(out) != 1 || out[0] != 20 {
			t.Fatalf("thread %d output = %v", tid, out)
		}
	}
}

func TestSimulateDoesNotMutateInput(t *testing.T) {
	m, _ := detlock.ParseProgram(testProgram)
	before := detlock.FormatProgram(m)
	opt := detlock.AllOptimizations()
	if _, err := detlock.Simulate(m, detlock.SimConfig{Threads: 2, Opt: &opt}); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if detlock.FormatProgram(m) != before {
		t.Fatalf("Simulate mutated the input module")
	}
}

func TestCheckDeterminismAPI(t *testing.T) {
	m, _ := detlock.ParseProgram(testProgram)
	opt := detlock.AllOptimizations()
	sched, err := detlock.CheckDeterminism(m, detlock.SimConfig{Threads: 4, Opt: &opt}, 4)
	if err != nil {
		t.Fatalf("CheckDeterminism: %v", err)
	}
	if sched.Len() != 80 {
		t.Fatalf("schedule len = %d", sched.Len())
	}
	if sched.Hash() == 0 {
		t.Fatalf("suspicious zero hash")
	}
}

func TestRuntimeFacade(t *testing.T) {
	rt := detlock.New(3)
	mu := rt.NewMutex()
	bar := rt.NewBarrier(3)
	var order []int
	rt.Run(func(th *detlock.Thread) {
		th.Tick(int64(100 - th.ID()*10)) // thread 2 has the lowest clock
		mu.Lock(th)
		order = append(order, th.ID())
		mu.Unlock(th)
		bar.Wait(th)
	})
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("acquisition order = %v, want [2 1 0] (by clock)", order)
	}
}

// TestFailureFacade exercises the robustness API through the public package:
// an ABBA deadlock returns a typed, renderable report, classified by the
// exported sentinels and type aliases.
func TestFailureFacade(t *testing.T) {
	rt := detlock.New(2)
	a := rt.NewMutex()
	b := rt.NewMutex()
	err := rt.Run(func(th *detlock.Thread) {
		if th.ID() == 0 {
			th.Tick(10)
			a.Lock(th)
			th.Tick(10)
			b.Lock(th)
			b.Unlock(th)
			a.Unlock(th)
		} else {
			th.Tick(15)
			b.Lock(th)
			th.Tick(5)
			a.Lock(th)
			a.Unlock(th)
			b.Unlock(th)
		}
	})
	if !errors.Is(err, detlock.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var dd *detlock.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("err = %v, want *detlock.DeadlockError", err)
	}
	if len(dd.Cycle) != 2 {
		t.Fatalf("cycle = %+v, want 2 edges", dd.Cycle)
	}
	out := detlock.FormatFailure(err)
	if !strings.Contains(out, "DEADLOCK") || !strings.Contains(out, "mutex#1") {
		t.Fatalf("FormatFailure missing report:\n%s", out)
	}
}

const racyProgram = `
module racy
global shared 4

func main() regs 4 {
entry:
  r0 = tid
  store shared[0], r0
  ret r0
}
`

func TestSimulateRaceDetection(t *testing.T) {
	m, err := detlock.ParseProgram(racyProgram)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	// Fail-fast: the run aborts with the typed race error.
	_, err = detlock.Simulate(m, detlock.SimConfig{
		Threads:       2,
		Deterministic: true,
		Race:          &detlock.RaceConfig{Policy: detlock.RaceFailFast},
	})
	if !errors.Is(err, detlock.ErrRace) {
		t.Fatalf("fail-fast err = %v, want ErrRace", err)
	}
	var re *detlock.RaceError
	if !errors.As(err, &re) {
		t.Fatalf("no *RaceError in %v", err)
	}
	if re.Sym != "shared" {
		t.Fatalf("race on %q, want shared", re.Sym)
	}
	if out := detlock.FormatFailure(err); !strings.Contains(out, "DATA RACE") {
		t.Fatalf("FormatFailure missing race report:\n%s", out)
	}
	// Report-and-continue: the run completes and carries the reports.
	res, err := detlock.Simulate(m, detlock.SimConfig{
		Threads:       2,
		Deterministic: true,
		Race:          &detlock.RaceConfig{Policy: detlock.RaceReport},
	})
	if err != nil {
		t.Fatalf("report mode: %v", err)
	}
	if len(res.Races) != 1 || res.RacesSuppressed != 0 {
		t.Fatalf("races = %d (suppressed %d), want 1/0", len(res.Races), res.RacesSuppressed)
	}
}

func TestSimulateRaceRequiresDeterministic(t *testing.T) {
	m, err := detlock.ParseProgram(racyProgram)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	_, err = detlock.Simulate(m, detlock.SimConfig{
		Threads: 2,
		Race:    &detlock.RaceConfig{Policy: detlock.RaceFailFast},
	})
	if !errors.Is(err, detlock.ErrRaceBackend) {
		t.Fatalf("err = %v, want ErrRaceBackend misuse", err)
	}
	var me *detlock.MisuseError
	if !errors.As(err, &me) || me.ThreadID != -1 {
		t.Fatalf("want configuration-level *MisuseError, got %v", err)
	}
}

func TestSimulateRaceFreeWithDetector(t *testing.T) {
	m, err := detlock.ParseProgram(testProgram)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	opt := detlock.AllOptimizations()
	res, err := detlock.Simulate(m, detlock.SimConfig{
		Threads:       4,
		Opt:           &opt,
		Deterministic: true,
		Race:          &detlock.RaceConfig{Policy: detlock.RaceFailFast},
	})
	if err != nil {
		t.Fatalf("false positive on the lock-protected program: %v", err)
	}
	if len(res.Races) != 0 {
		t.Fatalf("collected %d races", len(res.Races))
	}
}

// PerturbSeed moves physical timing but must not move the deterministic
// schedule (weak determinism under timing perturbation).
func TestPerturbSeedScheduleInvariant(t *testing.T) {
	m, err := detlock.ParseProgram(testProgram)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	opt := detlock.AllOptimizations()
	var refHash uint64
	for seed := int64(0); seed < 5; seed++ {
		res, err := detlock.Simulate(m, detlock.SimConfig{
			Threads:        4,
			Opt:            &opt,
			Deterministic:  true,
			RecordSchedule: true,
			PerturbSeed:    seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if seed == 0 {
			refHash = res.Schedule.Hash()
			continue
		}
		if res.Schedule.Hash() != refHash {
			t.Fatalf("seed %d: schedule hash %016x differs from %016x", seed, res.Schedule.Hash(), refHash)
		}
	}
}

func TestNewScheduleRecordAndGuard(t *testing.T) {
	s := detlock.NewSchedule()
	rt := detlock.New(2)
	if err := rt.RecordSchedule(s); err != nil {
		t.Fatalf("RecordSchedule: %v", err)
	}
	mu := rt.NewMutex()
	body := func(th *detlock.Thread) {
		th.Tick(int64(th.ID()) + 1)
		mu.Lock(th)
		th.Tick(1)
		mu.Unlock(th)
	}
	if err := rt.Run(body); err != nil {
		t.Fatalf("record run: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", s.Len())
	}
	rt2 := detlock.New(2)
	mu = rt2.NewMutex()
	if err := rt2.SetReplayGuard(s); err != nil {
		t.Fatalf("SetReplayGuard: %v", err)
	}
	if err := rt2.Run(body); err != nil {
		t.Fatalf("faithful replay flagged: %v", err)
	}
	// A third runtime with a different clock profile diverges, typed.
	rt3 := detlock.New(2)
	mu = rt3.NewMutex()
	if err := rt3.SetReplayGuard(s); err != nil {
		t.Fatalf("SetReplayGuard: %v", err)
	}
	err := rt3.Run(func(th *detlock.Thread) {
		th.Tick(int64(2-th.ID()) + 1) // inverted tick order flips acquisitions
		mu.Lock(th)
		th.Tick(1)
		mu.Unlock(th)
	})
	if !errors.Is(err, detlock.ErrDivergence) {
		t.Fatalf("err = %v, want ErrDivergence", err)
	}
	if out := detlock.FormatFailure(err); !strings.Contains(out, "DIVERGENCE") {
		t.Fatalf("FormatFailure missing divergence report:\n%s", out)
	}
}
