// Command detviz reproduces the paper's worked optimization example
// (Figures 3, 5, 7/8, 10, 12, 13): it prints the per-block logical clocks of
// the example function after each optimization stage, so the effect of every
// transformation is visible.
//
// Usage:
//
//	detviz            # the built-in worked example (paper Figure 3 analog)
//	detviz -f prog.dir -fn name   # any function of a textual IR program
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ir"
)

func main() {
	var (
		file = flag.String("f", "", "textual IR program (default: built-in worked example)")
		fn   = flag.String("fn", "bf_refine", "function to display")
		root = flag.String("root", "main", "thread entry function")
	)
	flag.Parse()

	load := func() *ir.Module {
		if *file == "" {
			return core.WorkedExample()
		}
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detviz:", err)
			os.Exit(1)
		}
		m, err := ir.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "detviz:", err)
			os.Exit(1)
		}
		return m
	}

	stages := []struct {
		title string
		opt   core.Options
	}{
		{"Figure 3 — base clocks, no optimization", core.OptNone},
		{"Figure 5 — after Optimization 1 (Function Clocking)", core.OptO1},
		{"Figures 7/8 — + Optimization 2a (Conditional Blocks, precise)", core.Options{O1: true, O2a: true}},
		{"Figure 10 — + Optimization 2b (Conditional Blocks, triangle)", core.Options{O1: true, O2a: true, O2b: true}},
		{"Figure 12 — + Optimization 3 (Averaging of Clocks)", core.Options{O1: true, O2a: true, O2b: true, O3: true}},
		{"Figure 13 — + Optimization 4 (Loops): all optimizations", core.OptAll},
	}
	for _, st := range stages {
		m := load()
		opt := st.opt
		opt.Roots = []string{*root}
		res, err := core.AnalyzeOnly(m, nil, nil, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detviz:", err)
			os.Exit(1)
		}
		f := m.Func(*fn)
		if f == nil {
			fmt.Fprintf(os.Stderr, "detviz: function %q not found\n", *fn)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n", st.title)
		if len(res.Clockable) > 0 {
			fmt.Printf("clocked functions: %v\n", res.ClockableNames())
		}
		printClocks(f)
		fmt.Println()
	}
}

// printClocks renders one block per line with its clock, marking zero-clock
// blocks (no update code) the way the paper greys them out.
func printClocks(f *ir.Func) {
	total := int64(0)
	for _, b := range f.Blocks {
		mark := ""
		if b.Unclockable {
			mark = "  [unclockable: sync/unclocked call]"
		} else if b.Clock == 0 {
			mark = "  [no update]"
		}
		fmt.Printf("  %-24s clock = %-5d%s\n", b.Name+":", b.Clock, mark)
		total += b.Clock
	}
	fmt.Printf("  %-24s total = %d\n", "", total)
}
