// Command detload runs the deterministic workload plane: seeded arrival
// processes pushed through the job service (single node or LoopNet cluster)
// across a scenario matrix, with a deterministic result table.
//
// Usage:
//
//	detload                      # default matrix: every shape × {1,3} nodes + flaky cell
//	detload -smoke               # quick variant (1k jobs/scenario)
//	detload -seed N              # matrix seed (default 1)
//	detload -jobs N              # arrivals per scenario (default 100000)
//	detload -shape poisson       # restrict to one arrival shape
//	detload -mix blend           # job mix (default blend)
//	detload -nodes 3             # restrict to one topology (default: 1 and 3)
//	detload -nemesis flaky       # transport nemesis for cluster scenarios
//	detload -rate R              # mean arrivals/sec (default 2000)
//	detload -j N                 # scenario worker pool (0 = GOMAXPROCS)
//	detload -annex               # also print the wall-clock annex (non-deterministic)
//
// The main table contains only deterministic columns: two invocations with
// the same -seed render byte-identical tables regardless of -j. Wall-clock
// throughput and latency live in the -annex table, which is explicitly not
// comparable across runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/workload"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "matrix seed")
		jobs    = flag.Int("jobs", 100000, "arrivals per scenario")
		smoke   = flag.Bool("smoke", false, "quick run: 1000 arrivals per scenario")
		shape   = flag.String("shape", "", "restrict to one arrival shape")
		mixName = flag.String("mix", "blend", "job mix name")
		nodes   = flag.Int("nodes", 0, "restrict to one topology (0 = sweep 1 and 3)")
		nemesis = flag.String("nemesis", "", "transport nemesis for cluster scenarios (none, flaky, slow)")
		rate    = flag.Float64("rate", 2000, "mean arrivals per second")
		pool    = flag.Int("j", 0, "scenario worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
		annex   = flag.Bool("annex", false, "also print the wall-clock annex")
	)
	flag.Parse()
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detload: "+format+"\n", args...)
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		usage("unexpected arguments %v", flag.Args())
	}
	if *jobs < 1 {
		usage("-jobs must be >= 1 (got %d)", *jobs)
	}
	if *rate <= 0 {
		usage("-rate must be positive (got %g)", *rate)
	}
	if *pool < 0 {
		usage("-j must be >= 0 (got %d)", *pool)
	}
	if *shape != "" && !knownShape(workload.Shape(*shape)) {
		usage("unknown -shape %q (want one of %v)", *shape, workload.Shapes())
	}
	if *nodes != 0 && *nodes < 1 {
		usage("-nodes must be >= 1 (got %d)", *nodes)
	}
	var nem workload.Nemesis
	switch *nemesis {
	case "", "none":
		nem = workload.NemesisNone
	case "flaky":
		nem = workload.NemesisFlaky
	case "slow":
		nem = workload.NemesisSlow
	default:
		usage("unknown -nemesis %q (want none, flaky, or slow)", *nemesis)
	}
	mix, err := workload.MixByName(*mixName)
	if err != nil {
		usage("%v", err)
	}
	if *smoke {
		*jobs = 1000
	}
	workers := *pool
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	scenarios := buildScenarios(*shape, mix, *nodes, nem, *jobs, *rate)
	results := workload.RunMatrix(context.Background(), workload.MatrixConfig{
		Seed:      *seed,
		Scenarios: scenarios,
		Parallel:  workers,
	})
	fmt.Printf("detload matrix: seed %d, %d scenarios, %d jobs each\n\n", *seed, len(scenarios), *jobs)
	fmt.Print(workload.RenderTable(results))
	failed := false
	for _, r := range results {
		if r.Err != nil {
			failed = true
		}
	}
	if *annex {
		fmt.Println()
		fmt.Print(workload.RenderAnnex(results))
		fmt.Println("\n(annex columns are wall-clock measurements; only the main table is run-to-run comparable)")
	}
	if failed {
		os.Exit(1)
	}
}

// buildScenarios assembles the sweep. With no restrictions this is the
// default matrix; -shape/-nodes/-nemesis narrow or override cells.
func buildScenarios(shape string, mix workload.MixSpec, nodes int, nem workload.Nemesis, jobs int, rate float64) []workload.Scenario {
	shapes := workload.Shapes()
	if shape != "" {
		shapes = []workload.Shape{workload.Shape(shape)}
	}
	topologies := []int{1, 3}
	if nodes != 0 {
		topologies = []int{nodes}
	}
	var scs []workload.Scenario
	for _, sh := range shapes {
		for _, n := range topologies {
			cellNem := workload.NemesisNone
			if n > 1 {
				cellNem = nem
			}
			name := fmt.Sprintf("%s/%s/n%d", sh, mix.Name, n)
			if cellNem != workload.NemesisNone {
				name += "+" + string(cellNem)
			}
			scs = append(scs, workload.Scenario{
				Name:    name,
				Arrival: workload.ArrivalConfig{Shape: sh, Jobs: jobs, RatePerSec: rate},
				Mix:     mix,
				Nodes:   n,
				Nemesis: cellNem,
			})
		}
	}
	// The default sweep keeps one adversarial-transport cell even when no
	// -nemesis was asked for, so the table always witnesses that transport
	// faults leave the deterministic columns unchanged.
	if shape == "" && nodes == 0 && nem == workload.NemesisNone {
		scs = append(scs, workload.Scenario{
			Name:    fmt.Sprintf("poisson/%s/n3+flaky", mix.Name),
			Arrival: workload.ArrivalConfig{Shape: workload.ShapePoisson, Jobs: jobs, RatePerSec: rate},
			Mix:     mix,
			Nodes:   3,
			Nemesis: workload.NemesisFlaky,
		})
	}
	return scs
}

func knownShape(s workload.Shape) bool {
	for _, sh := range workload.Shapes() {
		if sh == s {
			return true
		}
	}
	return false
}
