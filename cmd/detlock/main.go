// Command detlock compiles (instruments) and deterministically executes a
// program in the textual IR format on the multicore simulator.
//
// Usage:
//
//	detlock [-threads N] [-opt none|O1|O2|O3|O4|all] [-baseline] \
//	        [-runs K] [-show-ir] prog.dir
//
// By default the program is instrumented with all optimizations and run
// deterministically; -runs K > 1 re-executes and verifies that the
// synchronization schedule is identical across runs (weak determinism).
//
// -race enables the deterministic data-race detector (requires the
// deterministic backend, i.e. incompatible with -baseline); -race-policy
// selects fail-fast (stop at the first race) or report (collect races and
// finish the run). Any race exits with status 1.
package main

import (
	"flag"
	"fmt"
	"os"

	detlock "repro"
	"repro/internal/harness"
)

func main() {
	var (
		threads  = flag.Int("threads", 4, "simulated thread count")
		entry    = flag.String("entry", "main", "SPMD entry function")
		optName  = flag.String("opt", "all", "optimization preset: none|O1|O2|O3|O4|all")
		baseline = flag.Bool("baseline", false, "run uninstrumented with plain locks")
		runs     = flag.Int("runs", 1, "number of runs (schedules must match)")
		showIR   = flag.Bool("show-ir", false, "print the instrumented IR")
		race     = flag.Bool("race", false, "enable the deterministic data-race detector")
		racePol  = flag.String("race-policy", "fail", "race policy: fail (stop at first race) or report (collect and finish)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: detlock [flags] prog.dir")
		flag.Usage()
		os.Exit(2)
	}
	// Validate flag combinations up front: a bad invocation should be a short
	// usage message, not a mid-pipeline error (or a preset-table panic).
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detlock: "+format+"\n", args...)
		os.Exit(2)
	}
	if *threads < 1 {
		usage("-threads must be >= 1 (got %d)", *threads)
	}
	if *runs < 1 {
		usage("-runs must be >= 1 (got %d)", *runs)
	}
	if !validKey(*optName) {
		usage("unknown -opt %q (want one of %v)", *optName, harness.PresetKeys())
	}
	if *race && *baseline {
		usage("-race requires the deterministic backend; drop -baseline")
	}
	if *racePol != "fail" && *racePol != "report" {
		usage("unknown -race-policy %q (want fail or report)", *racePol)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	m, err := detlock.ParseProgram(string(src))
	if err != nil {
		fail(err)
	}

	cfg := detlock.SimConfig{
		Threads:        *threads,
		Entry:          *entry,
		Deterministic:  !*baseline,
		RecordSchedule: true,
	}
	if !*baseline {
		opt := harness.PresetByKey(*optName)
		cfg.Opt = &opt
	}
	if *race {
		rc := detlock.RaceConfig{Policy: detlock.RaceFailFast}
		if *racePol == "report" {
			rc.Policy = detlock.RaceReport
		}
		cfg.Race = &rc
	}

	if *showIR && cfg.Opt != nil {
		shown := m.Clone()
		if _, err := detlock.Instrument(shown, *cfg.Opt, *entry); err != nil {
			fail(err)
		}
		fmt.Println(detlock.FormatProgram(shown))
	}

	res, err := detlock.Simulate(m, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("cycles: %d   wait: %d   lock acquisitions: %d   clock updates: %d\n",
		res.Cycles, res.WaitCycles, res.Acquisitions, res.ClockUpdates)
	if len(res.Clockable) > 0 {
		fmt.Printf("clocked functions: %v\n", res.Clockable)
	}
	for tid, out := range res.Output {
		if len(out) > 0 {
			fmt.Printf("thread %d output: %v\n", tid, out)
		}
	}
	if res.Schedule != nil && res.Schedule.Len() > 0 {
		fmt.Printf("schedule hash: %016x (%d events)\n", res.Schedule.Hash(), res.Schedule.Len())
	}
	if len(res.Races) > 0 {
		for _, re := range res.Races {
			fmt.Fprintln(os.Stderr, detlock.FormatFailure(re))
		}
		if res.RacesSuppressed > 0 {
			fmt.Fprintf(os.Stderr, "detlock: %d further race reports suppressed by the cap\n", res.RacesSuppressed)
		}
		fmt.Fprintf(os.Stderr, "detlock: %d data race(s) detected\n", len(res.Races))
		os.Exit(1)
	} else if *race {
		fmt.Println("race detector: no races detected")
	}

	if *runs > 1 && !*baseline {
		if _, err := detlock.CheckDeterminism(m, cfg, *runs); err != nil {
			fail(err)
		}
		fmt.Printf("determinism verified across %d runs\n", *runs)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "detlock:", detlock.FormatFailure(err))
	os.Exit(1)
}

// validKey reports whether name is a known optimization preset.
func validKey(name string) bool {
	for _, k := range harness.PresetKeys() {
		if k == name {
			return true
		}
	}
	return false
}
