package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

// runClusterSmoke is the `make cluster-smoke` self-test: boot a real 3-node
// cluster on loopback HTTP, sweep jobs across it, kill one node mid-sweep,
// restart it on its own journal, and verify zero lost jobs — every accepted
// id reaches done with the same schedule hash everywhere — with zero
// determinism divergences observed by any node.
func runClusterSmoke() error {
	dir, err := os.MkdirTemp("", "detserve-cluster-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Listeners first: the peer list must be known before any node starts.
	const nNodes = 3
	lns := make([]net.Listener, nNodes)
	addrs := make([]string, nNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	type member struct {
		node *cluster.Node
		srv  *http.Server
	}
	boot := func(i int, ln net.Listener) (*member, error) {
		node, err := cluster.Open(cluster.Config{
			Self:          addrs[i],
			Peers:         addrs,
			ProbeInterval: 50 * time.Millisecond,
			StealInterval: 50 * time.Millisecond,
			FailThreshold: 2,
			Service: service.Config{
				Workers:      2,
				JournalPath:  filepath.Join(dir, fmt.Sprintf("node-%d.journal", i)),
				StealReclaim: 250 * time.Millisecond,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		srv := &http.Server{Handler: mountNode(newHandler(node.Service()), node)}
		go srv.Serve(ln)
		return &member{node: node, srv: srv}, nil
	}

	members := make([]*member, nNodes)
	for i, ln := range lns {
		m, err := boot(i, ln)
		if err != nil {
			return err
		}
		members[i] = m
	}
	defer func() {
		for _, m := range members {
			if m != nil {
				m.srv.Close()
				m.node.Close(context.Background())
			}
		}
	}()

	// Every node must come up ready.
	for _, addr := range addrs {
		if err := waitReady(addr, 5*time.Second); err != nil {
			return err
		}
	}

	submit := func(i int, perturb int64) (string, error) {
		body, err := json.Marshal(service.Request{Source: smokeProgram, PerturbSeed: perturb})
		if err != nil {
			return "", err
		}
		resp, err := http.Post("http://"+addrs[i]+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("node %d: submit status %d: %s", i, resp.StatusCode, payload)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(payload, &out); err != nil {
			return "", err
		}
		return out.ID, nil
	}

	// The sweep: jobs round-robin across the cluster, node 1 murdered midway
	// and restarted on its own journal a few submissions later.
	const sweep = 12
	const victim = 1
	type accepted struct {
		node int
		id   string
		seed int64
	}
	var jobs []accepted
	for k := 0; k < sweep; k++ {
		if k == sweep/2 {
			members[victim].srv.Close()
			members[victim].node.Kill()
			members[victim] = nil
			fmt.Printf("detserve: cluster-smoke: killed node %d mid-sweep\n", victim)
		}
		if k == sweep/2+3 {
			ln, err := net.Listen("tcp", addrs[victim])
			if err != nil {
				return fmt.Errorf("rebind %s: %w", addrs[victim], err)
			}
			m, err := boot(victim, ln)
			if err != nil {
				return err
			}
			members[victim] = m
			if err := waitReady(addrs[victim], 5*time.Second); err != nil {
				return err
			}
			fmt.Printf("detserve: cluster-smoke: restarted node %d\n", victim)
		}
		target := k % nNodes
		if members[target] == nil {
			target = (target + 1) % nNodes // the victim is down: reroute
		}
		id, err := submit(target, int64(k%4))
		if err != nil {
			return err
		}
		jobs = append(jobs, accepted{node: target, id: id, seed: int64(k % 4)})
	}

	// Zero lost jobs: every accepted id completes on its node, and identical
	// perturbations yield identical schedule hashes cluster-wide.
	hashes := map[int64]string{}
	for _, j := range jobs {
		view, err := waitJob(addrs[j.node], j.id, 15*time.Second)
		if err != nil {
			return err
		}
		if view.Result == nil {
			return fmt.Errorf("node %d job %s: done without result", j.node, j.id)
		}
		if prev, ok := hashes[j.seed]; ok && prev != view.Result.ScheduleHash {
			return fmt.Errorf("divergent schedule hash for seed %d: %s vs %s", j.seed, prev, view.Result.ScheduleHash)
		}
		hashes[j.seed] = view.Result.ScheduleHash
	}

	// Zero divergences anywhere.
	for i, addr := range addrs {
		resp, err := http.Get("http://" + addr + "/v1/stats")
		if err != nil {
			return err
		}
		var snap service.StatsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if snap.Divergences != 0 {
			return fmt.Errorf("node %d observed %d divergences", i, snap.Divergences)
		}
	}
	fmt.Printf("detserve: cluster-smoke: %d jobs survived a mid-sweep node kill, 0 lost, 0 divergences\n", sweep)
	return nil
}

// waitReady polls /readyz until 200 or the deadline.
func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became ready: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitJob polls a job until it reaches a terminal state.
func waitJob(addr, id string, timeout time.Duration) (*service.JobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
		if err == nil {
			var view service.JobView
			derr := json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK {
				switch view.Status {
				case service.StatusDone:
					return &view, nil
				case service.StatusFailed:
					return nil, fmt.Errorf("job %s failed: %s (%s)", id, view.Error, view.ErrorKind)
				}
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s on %s not done after %v", id, addr, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
