// Command detserve runs the deterministic-execution service as an HTTP
// server: a long-lived embedding of the ir→core→interp→sim pipeline behind a
// job-submission API with a worker pool and content-addressed caches.
//
// Usage:
//
//	detserve [-addr :8080] [-workers N] [-queue N] [-self-check RATE] \
//	         [-instr-cache N] [-result-cache N] [-pprof ADDR] \
//	         [-journal PATH] [-deadline DUR] [-max-retries N] \
//	         [-peers A,B,C] [-seed-peers A,B] [-self ADDR] [-shards N] \
//	         [-standby ADDR] [-ship-path PATH]
//	detserve -smoke
//	detserve -cluster-smoke
//	detserve -journal PATH -verify-journal
//	detserve -journal PATH -scrub
//
// Endpoints:
//
//	POST /v1/jobs        submit a job (body: service.Request JSON).
//	                     ?wait=1 blocks until the job completes and returns
//	                     the result (or the structured failure) directly; a
//	                     client that disconnects cancels its job.
//	GET  /v1/jobs/{id}   job status/result (service.JobView JSON).
//	GET  /v1/stats       service counters (service.StatsSnapshot JSON).
//	GET  /healthz        liveness + queue depth (200 while the process runs).
//	GET  /readyz         readiness (503 while joining, draining,
//	                     journal-degraded, or divergence circuit breaker
//	                     open).
//	     /internal/v1/*  cluster peer protocol (result fill, offers, work
//	                     stealing, journal shipping, gossip, join/handoff) —
//	                     see internal/cluster.
//	POST /v1/cluster/join   seed side of the dynamic-membership bootstrap.
//	POST /v1/cluster/drain  start a graceful drain (202; handoff + leave
//	                        proceed in the background).
//	GET  /v1/cluster/stats  cluster counters, membership view, peer liveness.
//
// Clustering: -peers enables a consistent-hash shard group over the listed
// nodes (peer cache fill with hedged retry, work stealing, deterministic
// health probing); -standby ships the job journal to a node running with
// -ship-path for warm takeover. Every peer failure degrades to local
// recomputation — never a client-visible error. See README "Running a
// cluster" and DESIGN.md §10.
//
// Dynamic membership: -seed-peers A,B replaces the static list with a
// gossiped, versioned membership view. The node starts joining, bootstraps
// through a seed (verifying the seed's journal snapshot by re-execution)
// and is admitted to the hash ring only then; -seed-peers "" (empty value)
// bootstraps a new cluster of one that others join. SIGTERM triggers a
// graceful drain: the node stops admitting, hands queued jobs, displaced
// cache keys and journal segment ownership to the surviving owners, spreads
// its tombstone, and exits. See DESIGN.md §13.
//
// Status codes: 400 for configuration misuse, 404 for unknown jobs, 422 for
// jobs that failed with a structured report (deadlock, race, divergence),
// 429 with a Retry-After header when the bounded queue is full or load
// shedding is active, 500 when a job exhausted its transient-failure retry
// budget, 503 with Retry-After while the divergence circuit breaker is open
// or the server is shutting down, 504 for jobs canceled by their deadline.
//
// Durability: -journal PATH arms the append-only JSONL job journal. Accepted
// jobs are fsynced before their id is returned and survive crashes: on
// restart, completed jobs are served from the journal (and re-verified by
// background re-execution), incomplete ones are re-executed — weak
// determinism guarantees the recovered results are identical. A journal that
// cannot be opened aborts startup; one that breaks mid-flight degrades the
// service (journaling and result cache off) but keeps it serving.
//
// -deadline bounds every job's execution time unless the request carries its
// own deadline_ms; -max-retries bounds per-job retries of transient faults
// (0 disables retries).
//
// -pprof ADDR serves net/http/pprof on a second, separate listener (e.g.
// -pprof localhost:6060), keeping the profiling surface off the job API's
// address. See README "Profiling".
//
// -smoke runs the self-test used by `make serve-smoke`: start an in-process
// server on a random port, submit the same program twice, and verify the
// second response is a cache hit with an identical schedule hash.
//
// -verify-journal runs a read-only integrity scan of the -journal log (CRC
// frames, record structure, torn tail) and prints the JSON report; it exits
// nonzero when damage is found. -scrub additionally repairs the log offline:
// damaged lines move to a `<journal>.quarantine` sidecar and the log is
// rewritten without them — the same pass server startup runs automatically.
// See DESIGN.md §11.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "job queue depth (0 = default 256)")
		instrCache  = flag.Int("instr-cache", 0, "instrumentation cache entries (0 = default)")
		resultCache = flag.Int("result-cache", 0, "result cache entries (0 = default)")
		selfCheck   = flag.Float64("self-check", 0, "fraction of cache hits to re-execute and verify (0..1)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
		journal     = flag.String("journal", "", "durable job journal path (empty = no durability)")
		deadlineF   = flag.Duration("deadline", 0, "default per-job execution deadline (0 = unbounded)")
		maxRetries  = flag.Int("max-retries", 2, "transient-failure retries per job (0 disables)")
		smoke       = flag.Bool("smoke", false, "run the cache-coherence smoke test and exit")
		scrubF      = flag.Bool("scrub", false, "repair the -journal log offline (quarantine damaged records, rewrite), print the JSON report, exit")
		verifyF     = flag.Bool("verify-journal", false, "read-only integrity scan of the -journal log, print the JSON report, exit (nonzero on damage)")

		self         = flag.String("self", "", "advertised cluster address (default: -addr)")
		peersF       = flag.String("peers", "", "comma-separated peer addresses (enables sharded peer cache fill and work stealing)")
		seedPeersF   = flag.String("seed-peers", "", "comma-separated seed addresses for dynamic membership (join via gossip); empty value bootstraps a new cluster")
		standby      = flag.String("standby", "", "standby address to ship the job journal to")
		shards       = flag.Int("shards", 0, "virtual shards per node on the hash ring (0 = default 64)")
		shipPath     = flag.String("ship-path", "", "act as a standby: persist shipped journal records here")
		clusterSmoke = flag.Bool("cluster-smoke", false, "run the 3-node kill-one-mid-sweep smoke test and exit")
	)
	flag.Parse()
	// Validate flags up front with typed, per-flag messages (the detbench
	// pattern): a bad invocation gets a short precise complaint and exit 2,
	// never a mid-startup error with a stack of context.
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detserve: "+format+"\n", args...)
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		usage("unexpected arguments %v (detserve takes flags only)", flag.Args())
	}
	for _, f := range []struct {
		name  string
		value int
	}{
		{"-workers", *workers}, {"-queue", *queue},
		{"-instr-cache", *instrCache}, {"-result-cache", *resultCache},
		{"-shards", *shards}, {"-max-retries", *maxRetries},
	} {
		if f.value < 0 {
			usage("%s must be >= 0 (got %d)", f.name, f.value)
		}
	}
	if *selfCheck < 0 || *selfCheck > 1 {
		usage("-self-check must be in [0,1] (got %g)", *selfCheck)
	}
	if *deadlineF < 0 {
		usage("-deadline must be >= 0 (got %v)", *deadlineF)
	}
	// Journal-family paths fail fast here, not after the listener is up: a
	// typo'd directory must never let the server run thinking it is durable.
	for _, f := range []struct{ name, path string }{
		{"-journal", *journal}, {"-ship-path", *shipPath},
	} {
		if f.path == "" {
			continue
		}
		dir := filepath.Dir(f.path)
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			usage("%s %q: parent directory %q does not exist", f.name, f.path, dir)
		}
		if st, err := os.Stat(f.path); err == nil && st.IsDir() {
			usage("%s %q is a directory, want a file path", f.name, f.path)
		}
	}
	if *journal != "" && *shipPath != "" && *journal == *shipPath {
		usage("-journal and -ship-path must be different files (both %q)", *journal)
	}
	if *standby != "" && *journal == "" {
		usage("-standby ships the job journal and requires -journal PATH")
	}
	if (*scrubF || *verifyF) && *journal == "" {
		usage("-scrub and -verify-journal require -journal PATH")
	}
	if *smoke && *clusterSmoke {
		usage("-smoke and -cluster-smoke are mutually exclusive")
	}
	// -seed-peers "" is meaningful (bootstrap a new cluster), so presence is
	// detected, not inferred from the value.
	seedMode := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed-peers" {
			seedMode = true
		}
	})
	if seedMode && *peersF != "" {
		usage("-peers and -seed-peers are mutually exclusive (static list vs gossip-joined membership)")
	}

	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		InstrCacheSize:  *instrCache,
		ResultCacheSize: *resultCache,
		SelfCheckRate:   *selfCheck,
		JournalPath:     *journal,
		DefaultDeadline: *deadlineF,
		MaxRetries:      *maxRetries,
	}
	if *maxRetries == 0 {
		cfg.MaxRetries = -1 // Config 0 means "default"; the flag's 0 means off
	}

	if *scrubF || *verifyF {
		rep, err := service.ScrubJournal(nil, *journal, *scrubF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detserve: scrub:", err)
			os.Exit(1)
		}
		out, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(out))
		if *verifyF && !*scrubF && (rep.Quarantined > 0 || rep.TornBytes > 0) {
			os.Exit(1) // verify mode flags damage without repairing it
		}
		return
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "detserve: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("detserve: smoke OK")
		return
	}
	if *clusterSmoke {
		if err := runClusterSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "detserve: cluster-smoke:", err)
			os.Exit(1)
		}
		fmt.Println("detserve: cluster-smoke OK")
		return
	}

	ccfg := cluster.Config{
		Self:          *self,
		Standby:       *standby,
		VirtualShards: *shards,
		ShipPath:      *shipPath,
		Service:       cfg,
	}
	if ccfg.Self == "" {
		ccfg.Self = *addr
	}
	for _, p := range strings.Split(*peersF, ",") {
		if p = strings.TrimSpace(p); p != "" {
			ccfg.Peers = append(ccfg.Peers, p)
		}
	}
	if seedMode {
		ccfg.SeedPeers = []string{} // non-nil selects dynamic membership
		for _, p := range strings.Split(*seedPeersF, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ccfg.SeedPeers = append(ccfg.SeedPeers, p)
			}
		}
	}

	if err := serve(*addr, *pprofAddr, ccfg); err != nil {
		fmt.Fprintln(os.Stderr, "detserve:", err)
		os.Exit(1)
	}
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains: the listener
// closes first, then the service finishes every accepted job. The service
// always runs inside a cluster node — with no peers and no standby that is
// provably the bare engine, and either way the node contributes /healthz,
// /readyz and the /internal/v1 peer protocol to the same listener.
func serve(addr, pprofAddr string, ccfg cluster.Config) error {
	// Open, not New: a front end asked for durability must refuse to start
	// without it rather than silently running degraded.
	node, err := cluster.Open(ccfg)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	svc := node.Service()
	cfg := ccfg.Service
	srv := &http.Server{Addr: addr, Handler: mountNode(newHandler(svc), node)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	if pprofAddr != "" {
		// The job API uses its own mux, so the pprof handlers go on a second
		// listener rather than leaking onto the public address. A startup
		// failure here (port taken) should abort like one on the main port.
		psrv := &http.Server{Addr: pprofAddr, Handler: pprofHandler()}
		defer psrv.Close()
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errCh <- fmt.Errorf("pprof listener: %w", err)
			}
		}()
		fmt.Printf("detserve: pprof on http://%s/debug/pprof/\n", pprofAddr)
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	snap := svc.Snapshot()
	fmt.Printf("detserve: listening on %s (workers=%d queue=%d)\n", addr, snap.Workers, snap.QueueCap)
	if snap.JournalEnabled {
		fmt.Printf("detserve: journal %s (%d jobs recovered)\n", cfg.JournalPath, snap.RecoveredJobs)
	}
	if peers := node.Peers(); len(peers) > 0 {
		fmt.Printf("detserve: cluster of %d peers as %s\n", len(peers), ccfg.Self)
	}
	if ccfg.SeedPeers != nil {
		if len(ccfg.SeedPeers) == 0 {
			fmt.Printf("detserve: bootstrapped dynamic cluster as %s (epoch %d)\n", ccfg.Self, node.Epoch())
		} else {
			// Join after the listener is up: handed-back completions and gossip
			// pushes need our HTTP surface reachable. Retry with backoff — the
			// seeds may still be starting.
			go func() {
				for attempt := 1; ; attempt++ {
					if err := node.Join(ctx); err == nil {
						fmt.Printf("detserve: joined cluster via %v as %s (epoch %d)\n", ccfg.SeedPeers, ccfg.Self, node.Epoch())
						return
					} else if ctx.Err() != nil || attempt >= 20 {
						fmt.Fprintf(os.Stderr, "detserve: join failed after %d attempts: %v (serving standalone until gossip reaches us)\n", attempt, err)
						return
					}
					time.Sleep(500 * time.Millisecond)
				}
			}()
		}
	}
	if ccfg.Standby != "" {
		fmt.Printf("detserve: shipping journal to %s\n", ccfg.Standby)
	}
	if ccfg.ShipPath != "" {
		fmt.Printf("detserve: standby store at %s\n", ccfg.ShipPath)
	}

	select {
	case err := <-errCh:
		node.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("detserve: shutting down: graceful drain (handoff, rebalance, journal transfer), then exit")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Drain before the listener closes: handed-off jobs post their
	// completions back through our HTTP surface, and peers pull our view.
	// New submissions are already refused (typed ErrDraining → 503).
	if err := node.Drain(shutCtx); err != nil {
		node.Close(context.Background()) // best effort: a timed-out drain must still release the node
		srv.Shutdown(shutCtx)
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return nil
}

// mountNode layers the cluster node's endpoints (/healthz, /readyz,
// /internal/v1/*, /v1/cluster/*) over the public job API on one mux.
func mountNode(api http.Handler, node *cluster.Node) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/healthz", node.Handler())
	mux.Handle("/readyz", node.Handler())
	mux.Handle("/internal/v1/", node.Handler())
	mux.Handle("/v1/cluster/", node.Handler())
	mux.Handle("/", api)
	return mux
}

// pprofHandler builds the standard pprof surface on an isolated mux (the
// net/http/pprof import also registers on DefaultServeMux, but nothing here
// serves that mux).
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newHandler wires the service into a Go 1.22 pattern-routing mux.
func newHandler(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		if r.URL.Query().Get("wait") == "1" {
			res, err := svc.Do(r.Context(), req)
			if err != nil {
				writeErr(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, res)
			return
		}
		id, err := svc.Submit(req)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.Lookup(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Snapshot())
	})
	return mux
}

// statusFor maps the service's typed errors onto HTTP status codes.
func statusFor(err error) int {
	switch service.Classify(err) {
	case "queue_full", "overloaded":
		return http.StatusTooManyRequests
	case "closed", "circuit_open", "draining":
		return http.StatusServiceUnavailable
	case "unknown_job":
		return http.StatusNotFound
	case "misuse":
		return http.StatusBadRequest
	case "timeout":
		return http.StatusGatewayTimeout
	case "retries_exhausted":
		// A transient serving-environment fault persisted across every
		// attempt: the server's fault, not the request's.
		return http.StatusInternalServerError
	case "deadlock", "race", "divergence":
		// The request was well-formed; the program failed with a structured
		// report.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	// Backpressure rejections (429/503) carry the service's retry hint so
	// well-behaved clients back off instead of hammering a shedding server.
	if ra := service.RetryAfter(err); ra > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ra))
	}
	writeJSON(w, code, map[string]string{
		"error": err.Error(),
		"kind":  service.Classify(err),
	})
}

// smokeProgram is the README quickstart program: four threads contending on
// one lock.
const smokeProgram = `
module quickstart
locks 1
global counter 1

func main() regs 6 {
entry:
  r0 = tid
  r1 = const 0
  jmp loop
loop:
  r2 = lt r1, 4
  br r2, body, done
body:
  lock 0
  r3 = load counter[0]
  r3 = add r3, 1
  store counter[0], r3
  unlock 0
  r1 = add r1, 1
  jmp loop
done:
  ret r1
}
`

// runSmoke starts the server on a loopback port, submits smokeProgram twice
// through the real HTTP stack, and verifies the second response is a result-
// cache hit with an identical schedule hash — the end-to-end proof that the
// content-addressed cache respects weak determinism.
func runSmoke(cfg service.Config) error {
	cfg.SelfCheckRate = 1 // verify every hit during the smoke test
	svc := service.New(cfg)
	defer svc.Close(context.Background())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newHandler(svc)}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	body, err := json.Marshal(service.Request{Source: smokeProgram})
	if err != nil {
		return err
	}
	submit := func() (*service.Result, error) {
		resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, payload)
		}
		var res service.Result
		if err := json.Unmarshal(payload, &res); err != nil {
			return nil, err
		}
		return &res, nil
	}

	first, err := submit()
	if err != nil {
		return fmt.Errorf("first submission: %w", err)
	}
	if first.Cached {
		return fmt.Errorf("first submission unexpectedly hit the cache")
	}
	second, err := submit()
	if err != nil {
		return fmt.Errorf("second submission: %w", err)
	}
	if !second.Cached {
		return fmt.Errorf("second submission missed the cache")
	}
	if !second.SelfChecked {
		return fmt.Errorf("second submission skipped the determinism self-check")
	}
	if second.ScheduleHash != first.ScheduleHash {
		return fmt.Errorf("schedule hash changed across identical submissions: %s vs %s",
			first.ScheduleHash, second.ScheduleHash)
	}

	// A malformed request must be a 400, not a server fault.
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader([]byte(`{"source":"","threads":-1}`)))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("invalid request returned %d, want 400", resp.StatusCode)
	}

	// Counters reflect the run.
	stats, err := http.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	defer stats.Body.Close()
	var snap service.StatsSnapshot
	if err := json.NewDecoder(stats.Body).Decode(&snap); err != nil {
		return err
	}
	if snap.ResultCacheHits < 1 || snap.Divergences != 0 {
		return fmt.Errorf("bad counters: hits=%d divergences=%d", snap.ResultCacheHits, snap.Divergences)
	}

	fmt.Printf("detserve: smoke: hash %s, cache hit verified, %d self-checks, 0 divergences\n",
		second.ScheduleHash, snap.SelfChecks)
	return nil
}
