package main

// The -bench-json mode: measure the hot-loop rates and the service
// submit→result latency, and write the BENCH_PR4.json benchmark report.
// The committed file at the repo root is regenerated with:
//
//	go run ./cmd/detbench -bench-json BENCH_PR4.json
//
// (see EXPERIMENTS.md). -bench-short reduces repetitions for the CI smoke
// run; committed numbers are generated without it.

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// benchProgram is the README quickstart program (four threads contending on
// one lock) — the payload for the service-latency measurement, chosen so the
// numbers are reproducible from the documented quickstart.
const benchProgram = `
module quickstart
locks 1
global counter 1

func main() regs 6 {
entry:
  r0 = tid
  r1 = const 0
  jmp loop
loop:
  r2 = lt r1, 4
  br r2, body, done
body:
  lock 0
  r3 = load counter[0]
  r3 = add r3, 1
  store counter[0], r3
  unlock 0
  r1 = add r1, 1
  jmp loop
done:
  ret r1
}
`

// runBenchJSON produces the benchmark report and writes it to path.
func runBenchJSON(r *harness.Runner, path string, short bool) error {
	rep, err := r.BenchSuite(short)
	if err != nil {
		return err
	}
	rep.GeneratedWith = "go run ./cmd/detbench -bench-json " + path
	if short {
		rep.GeneratedWith += " -bench-short"
	}

	cold, warm, err := serviceLatency()
	if err != nil {
		return err
	}
	rep.ServiceColdMS = cold
	rep.ServiceWarmMS = warm

	if err := os.WriteFile(path, rep.JSON(), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: sweep %.2fs -> %.2fs (%.2fx), service cold %.2fms warm %.3fms\n",
		rep.SweepSecondsReference, rep.SweepSecondsOptimized, rep.SweepSpeedup,
		rep.ServiceColdMS, rep.ServiceWarmMS)
	for _, wb := range rep.Benchmarks {
		fmt.Printf("bench: %-10s %7.2f MIPS %10.0f events/s  race +%.1f%%\n",
			wb.Name, wb.InterpMIPS, wb.EngineEventsPerSec, wb.RaceOverheadPct)
	}
	fmt.Println("bench: wrote", path)
	return nil
}

// serviceLatency measures the submit→result wall-clock of the quickstart
// program through the service layer: cold (empty caches, full
// parse→instrument→simulate pipeline) and warm (content-addressed
// result-cache hit).
func serviceLatency() (coldMS, warmMS float64, err error) {
	svc := service.New(service.Config{Workers: 1})
	ctx := context.Background()
	defer svc.Close(ctx)

	req := service.Request{Source: benchProgram}
	start := time.Now()
	res, err := svc.Do(ctx, req)
	if err != nil {
		return 0, 0, fmt.Errorf("service cold run: %w", err)
	}
	coldMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if res.Cached {
		return 0, 0, fmt.Errorf("service cold run unexpectedly hit the cache")
	}

	start = time.Now()
	res, err = svc.Do(ctx, req)
	if err != nil {
		return 0, 0, fmt.Errorf("service warm run: %w", err)
	}
	warmMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if !res.Cached {
		return 0, 0, fmt.Errorf("service warm run missed the result cache")
	}
	return coldMS, warmMS, nil
}
