// Command detbench regenerates the paper's evaluation: Table I, Table II,
// Figure 14, Figure 15, and the ablation sweeps.
//
// Usage:
//
//	detbench -table1            # Table I (and Figure 14, derived)
//	detbench -table2            # Table II + Kendo chunk tuning ablation
//	detbench -fig15             # Figure 15 ahead-of-time ablation
//	detbench -ablation          # Kendo chunk sweep + lock-rate sensitivity
//	detbench -all               # everything
//	detbench -threads N         # thread count (default 4, as in the paper)
//	detbench -bench name        # restrict Table I/II to one benchmark
//	detbench -race              # fail-fast race detection on deterministic runs
//	detbench -j N               # worker pool for the sweep (default GOMAXPROCS)
//	detbench -bench-json PATH   # write the BENCH_PR4.json benchmark report
//	detbench -bench-short       # single-rep smoke variant of -bench-json
//	detbench -cpuprofile PATH   # write a pprof CPU profile of the run
//	detbench -memprofile PATH   # write an end-of-run heap profile
//
// The (benchmark × optimization × mode) sweep cells are independent
// simulations, so -j runs them on a worker pool; the rendered tables are
// byte-identical to a sequential run regardless of N.
//
// -race is a correctness guard, not a benchmark mode: it perturbs the
// deterministic runs' instruction stream with detector checks, so overhead
// numbers produced with it enabled are not comparable to the paper's.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/harness"
	"repro/internal/splash"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the Table I sweep")
		table2   = flag.Bool("table2", false, "run the Table II comparison")
		fig15    = flag.Bool("fig15", false, "run the Figure 15 ablation")
		ablation = flag.Bool("ablation", false, "run the ablation sweeps")
		all      = flag.Bool("all", false, "run everything")
		threads  = flag.Int("threads", 4, "simulated thread count")
		bench    = flag.String("bench", "", "restrict to one benchmark")
		diag     = flag.String("diag", "", "print per-mode diagnostics for one benchmark")
		race     = flag.Bool("race", false, "enable fail-fast race detection on deterministic runs")
		jobs     = flag.Int("j", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = sequential)")

		benchJSON  = flag.String("bench-json", "", "write the benchmark report (BENCH_PR4.json schema) to this path and exit")
		benchShort = flag.Bool("bench-short", false, "single-repetition -bench-json smoke run (committed numbers use full reps)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write an end-of-run heap profile to this path")
	)
	flag.Parse()
	// Validate flags up front: bad invocations get a short usage message,
	// never a mid-sweep error.
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detbench: "+format+"\n", args...)
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		usage("unexpected arguments %v", flag.Args())
	}
	if *threads < 1 {
		usage("-threads must be >= 1 (got %d)", *threads)
	}
	if *jobs < 0 {
		usage("-j must be >= 0 (got %d)", *jobs)
	}
	if *bench != "" && !knownBench(*bench) {
		usage("unknown -bench %q (want one of %v)", *bench, splash.Names())
	}
	if *diag != "" && !knownBench(*diag) {
		usage("unknown -diag %q (want one of %v)", *diag, splash.Names())
	}
	if *benchShort && *benchJSON == "" {
		usage("-bench-short requires -bench-json")
	}
	workers := *jobs
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Profiles flush on every exit path: fail() routes through finish too.
	finish := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			usage("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			usage("-cpuprofile: %v", err)
		}
		finish = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		prev := finish
		finish = func() {
			prev()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "detbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "detbench: -memprofile:", err)
			}
		}
	}
	defer finish()
	if *diag != "" {
		r := harness.NewRunner()
		r.Threads = *threads
		r.RaceCheck = *race
		runDiag(r, *diag)
		return
	}
	if !*table1 && !*table2 && !*fig15 && !*ablation && !*all {
		*all = true
	}
	r := harness.NewRunner()
	r.Threads = *threads
	r.RaceCheck = *race
	r.Workers = workers
	if *race {
		fmt.Println("race detector enabled on deterministic runs; overheads below are NOT paper-comparable")
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "detbench:", err)
		finish()
		os.Exit(1)
	}

	if *benchJSON != "" {
		if err := runBenchJSON(r, *benchJSON, *benchShort); err != nil {
			fail(err)
		}
		return
	}

	if *table1 || *all {
		if *bench != "" {
			col, err := r.TableIFor(*bench)
			if err != nil {
				fail(err)
			}
			printColumn(col)
		} else {
			rep, err := r.TableI()
			if err != nil {
				fail(err)
			}
			fmt.Println(rep.Render())
			fmt.Println(harness.Fig14(rep).Render())
			fmt.Printf("Average clock overhead: no-opt %.0f%% -> all-opt %.0f%% (paper: 20%% -> 8%%)\n",
				rep.AverageClocksPct("none"), rep.AverageClocksPct("all"))
			fmt.Printf("Average det overhead:   no-opt %.0f%% -> all-opt %.0f%% (paper: 28%% -> 15%%)\n\n",
				rep.AverageDetPct("none"), rep.AverageDetPct("all"))
		}
	}
	if *table2 || *all {
		if *bench != "" {
			row, err := r.TableIIFor(*bench)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%s: kendo %.0f%% (chunk %d) detlock %.0f%% | paper %v/%v\n",
				row.Name, row.KendoPct, row.KendoChunk, row.DetLockPct,
				row.PaperKendoPct, row.PaperDetLockPct)
			fmt.Printf("  chunk sweep: %v\n", row.KendoSweep)
		} else {
			rep, err := r.TableII()
			if err != nil {
				fail(err)
			}
			fmt.Println(rep.Render())
		}
	}
	if *fig15 || *all {
		rep, err := r.Fig15()
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Render())
	}
	if *ablation || *all {
		runAblations(r)
	}
}

func printColumn(col *harness.BenchTableI) {
	b := col.Bench
	fmt.Printf("%s: baseline %.3f ms, %.0f locks/sec, %d clockable (paper %d), %d acq, basewait %d\n",
		b.Name, col.Baseline.Seconds()*1000, col.LocksPerSec, col.Clockable, b.PaperClockable,
		col.Baseline.Acquisitions, col.Baseline.WaitCycles)
	for _, key := range harness.PresetKeys() {
		fmt.Printf("  %-6s clocks %6.1f%% (paper %3.0f%%)   det %6.1f%% (paper %3.0f%%)\n",
			key, col.ClocksPct[key], b.PaperClockOverheadPct[key],
			col.DetPct[key], b.PaperDetOverheadPct[key])
	}
}

// knownBench reports whether name is one of the splash workloads.
func knownBench(name string) bool {
	for _, n := range splash.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// runDiag prints raw per-run numbers (makespan, wait cycles, clock updates)
// for every preset × mode of one benchmark.
func runDiag(r *harness.Runner, name string) {
	b, err := splash.New(name, r.Threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detbench:", err)
		os.Exit(1)
	}
	base, err := r.Run(b, harness.PresetByKey("none"), harness.ModeBaseline, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detbench:", err)
		os.Exit(1)
	}
	fmt.Printf("%s baseline: makespan %d wait %d acq %d\n",
		name, base.Makespan, base.WaitCycles, base.Acquisitions)
	for _, key := range harness.PresetKeys() {
		co, err1 := r.Run(b, harness.PresetByKey(key), harness.ModeClocksOnly, 0)
		de, err2 := r.Run(b, harness.PresetByKey(key), harness.ModeDet, 0)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "detbench:", err1, err2)
			os.Exit(1)
		}
		fmt.Printf("  %-5s clocks: makespan %8d wait %8d updates %7d | det: makespan %8d wait %8d\n",
			key, co.Makespan, co.WaitCycles, co.ClockUpdates, de.Makespan, de.WaitCycles)
	}
}

// runAblations prints the Kendo chunk-size sweep for Radiosity (the paper's
// §V-C tuning discussion) and a lock-rate sensitivity sweep.
func runAblations(r *harness.Runner) {
	fmt.Println("Ablation: Kendo chunk-size sweep (radiosity)")
	row, err := r.TableIIFor("radiosity")
	if err != nil {
		fmt.Fprintln(os.Stderr, "detbench:", err)
		os.Exit(1)
	}
	for _, chunk := range r.KendoChunks {
		fmt.Printf("  chunk %6d: %6.1f%%\n", chunk, row.KendoSweep[chunk])
	}
	fmt.Printf("  best: chunk %d at %.1f%%\n\n", row.KendoChunk, row.KendoPct)

	fmt.Println("Ablation: DetLock vs Kendo across lock rates")
	for _, name := range splash.Names() {
		rw, err := r.TableIIFor(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detbench:", err)
			os.Exit(1)
		}
		winner := "DetLock"
		if rw.KendoPct < rw.DetLockPct {
			winner = "Kendo"
		}
		fmt.Printf("  %-10s %10.0f locks/sec: detlock %5.1f%%  kendo %5.1f%%  -> %s\n",
			name, rw.DetLockLocksSec, rw.DetLockPct, rw.KendoPct, winner)
	}
}
