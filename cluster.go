package detlock

import (
	"repro/internal/cluster"
	"repro/internal/service"
)

// Cluster layer: a fault-tolerant shard group of services. Weak determinism
// is the coherence protocol — any node can recompute any job and obtain the
// byte-identical result — so the cluster replicates without consensus:
// content-addressed result caches are sharded by consistent hashing, misses
// fill from the shard owner (deadline + one hedged retry) and fall back to
// local recomputation on any peer failure, idle nodes steal queued jobs from
// loaded peers, and the job journal ships to a standby for warm takeover
// through the ordinary crash-recovery path. A ClusterNode with no peers and
// no standby is bitwise-identical to the bare service. cmd/detserve wires
// this behind -peers / -standby / -shards.

// ClusterNode is one member of a detserve shard group.
type ClusterNode = cluster.Node

// ClusterConfig parameterizes OpenClusterNode.
type ClusterConfig = cluster.Config

// ClusterStats is the node's cluster-layer counter snapshot (fills, offers,
// steals, shipping).
type ClusterStats = cluster.Stats

// ClusterPeerStatus is one peer's liveness state as seen by a node's
// deterministic failure detector.
type ClusterPeerStatus = cluster.PeerStatus

// ClusterLoopNet is an in-memory partitionable transport for deterministic
// cluster tests (node kill, restart, network partition injection).
type ClusterLoopNet = cluster.LoopNet

// OpenClusterNode starts a cluster node: the inner service plus membership,
// sharded cache fill, work stealing and journal shipping, all reachable
// through ClusterNode.Handler.
func OpenClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.Open(cfg) }

// NewClusterLoopNet returns an empty in-memory cluster transport.
func NewClusterLoopNet() *ClusterLoopNet { return cluster.NewLoopNet() }

// ClusterTakeover promotes a shipped journal into a running service — the
// standby's warm-takeover path, reusing crash recovery verbatim.
func ClusterTakeover(shipPath string, cfg ServiceConfig) (*Service, error) {
	return cluster.Takeover(shipPath, service.Config(cfg))
}
