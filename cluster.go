package detlock

import (
	"repro/internal/cluster"
	"repro/internal/service"
)

// Cluster layer: a fault-tolerant shard group of services. Weak determinism
// is the coherence protocol — any node can recompute any job and obtain the
// byte-identical result — so the cluster replicates without consensus:
// content-addressed result caches are sharded by consistent hashing, misses
// fill from the shard owner (deadline + one hedged retry) and fall back to
// local recomputation on any peer failure, idle nodes steal queued jobs from
// loaded peers, and the job journal ships to a standby for warm takeover
// through the ordinary crash-recovery path. A ClusterNode with no peers and
// no standby is bitwise-identical to the bare service. cmd/detserve wires
// this behind -peers / -standby / -shards.

// Dynamic membership (ClusterConfig.SeedPeers) replaces the static peer list
// with a versioned view — a monotonic config epoch plus per-node lifecycle
// states (joining → active → draining → left) — disseminated by seeded
// gossip. The hash ring is rebuilt per config epoch; joins bootstrap through
// a seed with a re-execution cross-check, drains hand queued work, displaced
// cache keys, and journal segment ownership to the surviving owners, and an
// anti-entropy loop repairs divergent or missing cache entries against the
// deterministic recompute path.

// ClusterNode is one member of a detserve shard group.
type ClusterNode = cluster.Node

// ClusterConfig parameterizes OpenClusterNode. Validate rejects
// contradictory configurations (static Peers together with SeedPeers,
// a clustered node without Self, pre-set service hooks) with the same typed
// *MisuseError (Kind ErrBadConfig) the service layer uses.
type ClusterConfig = cluster.Config

// ClusterMemberState is one node's lifecycle state in the membership view.
type ClusterMemberState = cluster.MemberState

// Membership lifecycle states, in forward-only order.
const (
	ClusterStateJoining  = cluster.StateJoining
	ClusterStateActive   = cluster.StateActive
	ClusterStateDraining = cluster.StateDraining
	ClusterStateLeft     = cluster.StateLeft
)

// ClusterMember is one node's entry in a membership view.
type ClusterMember = cluster.Member

// ClusterView is a versioned membership view: the config epoch plus every
// known member's lifecycle state. Views merge as a join-semilattice, so any
// gossip order converges all nodes to the identical view.
type ClusterView = cluster.View

// ClusterStats is the node's cluster-layer counter snapshot (fills, offers,
// steals, shipping).
type ClusterStats = cluster.Stats

// ClusterPeerStatus is one peer's liveness state as seen by a node's
// deterministic failure detector.
type ClusterPeerStatus = cluster.PeerStatus

// ClusterLoopNet is an in-memory partitionable transport for deterministic
// cluster tests (node kill, restart, network partition injection).
type ClusterLoopNet = cluster.LoopNet

// OpenClusterNode starts a cluster node: the inner service plus membership,
// sharded cache fill, work stealing and journal shipping, all reachable
// through ClusterNode.Handler.
func OpenClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.Open(cfg) }

// NewClusterLoopNet returns an empty in-memory cluster transport.
func NewClusterLoopNet() *ClusterLoopNet { return cluster.NewLoopNet() }

// ClusterTakeover promotes a shipped journal into a running service — the
// standby's warm-takeover path, reusing crash recovery verbatim.
func ClusterTakeover(shipPath string, cfg ServiceConfig) (*Service, error) {
	return cluster.Takeover(shipPath, service.Config(cfg))
}
