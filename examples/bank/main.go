// Bank: reproducible concurrent transfers — the debugging/fault-tolerance
// motivation from the paper's introduction.
//
// Four tellers process disjoint slices of a transfer list against shared
// accounts protected by per-account locks (lock ordering by account id
// avoids deadlock). Every run produces byte-identical audit logs AND
// identical intermediate states, because the deterministic runtime fixes
// the global lock-acquisition order. With ordinary mutexes the final
// balances would match (the transfers commute) but the audit log — the
// execution history a debugger or a replica needs — would differ run to
// run.
//
//	go run ./examples/bank
package main

import (
	"fmt"

	detlock "repro"
)

const (
	numAccounts = 16
	numTellers  = 4
	transfers   = 200
)

type transfer struct {
	from, to int
	amount   int64
}

func main() {
	// Deterministic synthetic transfer list.
	var txs []transfer
	seed := int64(0x9E3779B9)
	for i := 0; i < transfers; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		f := int((seed>>16)&0xFFFF) % numAccounts
		t := int((seed>>32)&0xFFFF) % numAccounts
		if f == t {
			t = (t + 1) % numAccounts
		}
		txs = append(txs, transfer{f, t, (seed>>48)&0xFF + 1})
	}

	run := func() (balances [numAccounts]int64, audit []string) {
		rt := detlock.New(numTellers)
		locks := make([]*detlock.Mutex, numAccounts)
		for i := range locks {
			locks[i] = rt.NewMutex()
		}
		auditMu := rt.NewMutex()
		for i := range balances {
			balances[i] = 1000
		}
		rt.Run(func(t *detlock.Thread) {
			for i := t.ID(); i < len(txs); i += numTellers {
				tx := txs[i]
				// Account for the work of locating/validating the transfer.
				t.Tick(int64(20 + i%7))
				lo, hi := tx.from, tx.to
				if lo > hi {
					lo, hi = hi, lo
				}
				locks[lo].Lock(t)
				locks[hi].Lock(t)
				balances[tx.from] -= tx.amount
				balances[tx.to] += tx.amount
				snapshot := balances[tx.from]
				locks[hi].Unlock(t)
				locks[lo].Unlock(t)

				auditMu.Lock(t)
				audit = append(audit, fmt.Sprintf(
					"teller %d: %d -> %d amount %d (from-balance now %d)",
					t.ID(), tx.from, tx.to, tx.amount, snapshot))
				auditMu.Unlock(t)
			}
		})
		return balances, audit
	}

	bal1, audit1 := run()
	fmt.Printf("processed %d transfers across %d accounts\n", transfers, numAccounts)
	fmt.Println("first audit lines:")
	for _, line := range audit1[:5] {
		fmt.Println("  ", line)
	}

	var total int64
	for _, b := range bal1 {
		total += b
	}
	fmt.Printf("total balance: %d (conserved: %v)\n", total, total == numAccounts*1000)

	// Replica check: a second run must produce the identical audit log —
	// this is what makes replica-based fault tolerance possible (§I).
	bal2, audit2 := run()
	same := bal1 == bal2 && len(audit1) == len(audit2)
	if same {
		for i := range audit1 {
			if audit1[i] != audit2[i] {
				same = false
				fmt.Printf("audit diverged at %d:\n  %s\n  %s\n", i, audit1[i], audit2[i])
				break
			}
		}
	}
	fmt.Printf("replica run identical (balances + full audit log): %v\n", same)
}
