// Deadlock: a textbook ABBA lock-order inversion, terminated by the
// runtime's deadlock detector instead of hanging forever.
//
// Thread 0 locks A then B; thread 1 locks B then A. The logical clocks are
// arranged so both threads hold their first lock before either requests its
// second — the deadlock is guaranteed, not timing-dependent. The runtime's
// wait-for graph sees the instant every live thread is blocked and Run
// returns a *detlock.DeadlockError naming the exact cycle with every
// thread's frozen clock. Because blocking events are turn-gated, the report
// is byte-identical on every run — a deadlock here is a reproducible
// artifact you can diff, not a flaky hang.
//
//	go run ./examples/deadlock
package main

import (
	"errors"
	"fmt"
	"os"

	detlock "repro"
)

func main() {
	rt := detlock.New(2)
	a := rt.NewMutex() // mutex#0
	b := rt.NewMutex() // mutex#1

	err := rt.Run(func(t *detlock.Thread) {
		if t.ID() == 0 {
			t.Tick(10)
			a.Lock(t)
			t.Tick(10)
			b.Lock(t) // blocks: thread 1 holds B
			b.Unlock(t)
			a.Unlock(t)
		} else {
			t.Tick(15)
			b.Lock(t)
			t.Tick(5)
			a.Lock(t) // blocks: thread 0 holds A
			a.Unlock(t)
			b.Unlock(t)
		}
	})

	if !errors.Is(err, detlock.ErrDeadlock) {
		fmt.Fprintf(os.Stderr, "expected a deadlock, got: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(detlock.FormatFailure(err))

	var dd *detlock.DeadlockError
	errors.As(err, &dd)
	fmt.Printf("\ncycle has %d edges; identical on every run\n", len(dd.Cycle))
}
