// Quickstart: deterministic execution for plain Go goroutines.
//
// Four workers contend for one lock while doing different amounts of work.
// Under sync.Mutex the interleaving — and therefore the event log — varies
// run to run; under detlock the acquisition order is a pure function of the
// logical clocks, so the log is identical on every run (weak determinism,
// the paper's §II).
//
// Run it a few times:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	detlock "repro"
)

func main() {
	const (
		threads = 4
		rounds  = 5
	)
	run := func() []string {
		rt := detlock.New(threads)
		mu := rt.NewMutex()
		var log []string
		rt.Run(func(t *detlock.Thread) {
			for r := 0; r < rounds; r++ {
				// Deterministic "work": each thread advances its logical
				// clock by a different amount, exactly as the compiler-
				// inserted updates would for different code paths.
				t.Tick(int64(10*(t.ID()+1) + r))
				mu.Lock(t)
				log = append(log, fmt.Sprintf("round %d: thread %d (clock %d)", r, t.ID(), t.Clock()))
				mu.Unlock(t)
			}
		})
		return log
	}

	first := run()
	fmt.Println("acquisition order (identical on every run):")
	for _, line := range first {
		fmt.Println(" ", line)
	}

	// Prove it: re-run many times and compare.
	for i := 0; i < 10; i++ {
		again := run()
		for j := range first {
			if again[j] != first[j] {
				fmt.Printf("DIVERGED at %d: %q vs %q\n", j, again[j], first[j])
				return
			}
		}
	}
	fmt.Println("10 re-runs produced the identical schedule ✓")
}
