// Replay: producer/consumer with condition variables — the synchronization
// primitive the paper lists as future work (§V), implemented in this
// reproduction as an extension — plus deterministic allocation (the paper's
// malloc shim, §III-B).
//
// A producer allocates work records from a deterministic arena and hands
// them to consumers through a condition variable. The complete event
// history (allocation offsets included) is identical on every run.
//
// The second half demonstrates divergence *detection*: the lock-acquisition
// schedule of a reference run is recorded with RecordSchedule, persisted to
// disk as JSON, reloaded, and the reloaded copy arms SetReplayGuard — a
// faithful re-run replays cleanly against it, and a perturbed re-run (one
// thread's clock profile changed — the observable symptom of a data race
// under weak determinism) terminates with a typed *DivergenceError naming
// the first mismatched acquisition. Persisting the schedule instead of
// holding it in memory is what lets a recorded run be audited or replayed
// by a different process (the service layer's result cache stores schedules
// in the same JSON form).
//
//	go run ./examples/replay
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	detlock "repro"
)

const (
	consumers = 3
	items     = 30
)

func main() {
	run := func() []string {
		rt := detlock.New(1 + consumers)
		mu := rt.NewMutex()
		cv := rt.NewCond(mu)
		arena := rt.NewAllocator(4096)

		queue := make([]int64, 0, items)
		produced, consumed := 0, 0
		var history []string

		rt.Run(func(t *detlock.Thread) {
			if t.ID() == 0 { // producer
				for i := 0; i < items; i++ {
					t.Tick(int64(15 + i%4)) // "build the record"
					off := arena.Alloc(t, int64(8+i%8))
					mu.Lock(t)
					queue = append(queue, off)
					produced++
					history = append(history,
						fmt.Sprintf("produce #%d at arena offset %d", i, off))
					cv.Signal(t)
					mu.Unlock(t)
				}
				// Wake everyone for shutdown.
				mu.Lock(t)
				produced = -1
				cv.Broadcast(t)
				mu.Unlock(t)
				return
			}
			// Consumers.
			for {
				t.Tick(9)
				mu.Lock(t)
				for len(queue) == 0 && produced >= 0 {
					cv.Wait(t)
				}
				if len(queue) == 0 {
					mu.Unlock(t)
					return
				}
				off := queue[0]
				queue = queue[1:]
				consumed++
				history = append(history,
					fmt.Sprintf("consume by thread %d from offset %d", t.ID(), off))
				mu.Unlock(t)
				arena.Free(t, off)
			}
		})
		history = append(history, fmt.Sprintf("done: %d consumed", consumed))
		return history
	}

	first := run()
	fmt.Printf("event history (%d events), first and last lines:\n", len(first))
	for _, l := range first[:4] {
		fmt.Println("  ", l)
	}
	fmt.Println("   ...")
	fmt.Println("  ", first[len(first)-1])

	for i := 0; i < 8; i++ {
		if again := run(); !equal(first, again) {
			fmt.Println("HISTORY DIVERGED — determinism violated")
			return
		}
	}
	fmt.Println("8 replays produced the identical history ✓")
	fmt.Println()
	divergenceDemo()
}

// divergenceDemo records a reference schedule, replays it cleanly, then
// forces a divergence and prints the typed report.
func divergenceDemo() {
	ladder := func(record, guard *detlock.Schedule, perturb bool) error {
		rt := detlock.New(3)
		if record != nil {
			if err := rt.RecordSchedule(record); err != nil {
				return err
			}
		}
		if guard != nil {
			if err := rt.SetReplayGuard(guard); err != nil {
				return err
			}
		}
		mu := rt.NewMutex()
		return rt.Run(func(t *detlock.Thread) {
			for i := 0; i < 4; i++ {
				tick := int64(t.ID() + 1)
				if perturb && t.ID() == 1 && i == 2 {
					// The stand-in for a data race: thread 1's clock profile
					// changes mid-run, so its acquisitions land elsewhere in
					// the global order.
					tick += 5
				}
				t.Tick(tick)
				mu.Lock(t)
				t.Tick(1)
				mu.Unlock(t)
			}
		})
	}

	ref := detlock.NewSchedule()
	if err := ladder(ref, nil, false); err != nil {
		fmt.Println("reference run failed:", err)
		return
	}
	fmt.Printf("reference schedule recorded: %d acquisitions, hash %016x\n", ref.Len(), ref.Hash())

	// Persist the schedule to disk and replay against the reloaded copy — a
	// different process could do the same with the file alone.
	path := filepath.Join(os.TempDir(), "detlock-replay-schedule.json")
	data, err := json.Marshal(ref)
	if err != nil {
		fmt.Println("marshal schedule:", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Println("persist schedule:", err)
		return
	}
	loaded := detlock.NewSchedule()
	raw, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(raw, loaded)
	}
	if err != nil {
		fmt.Println("reload schedule:", err)
		return
	}
	if loaded.Hash() != ref.Hash() {
		fmt.Println("UNEXPECTED: reloaded schedule hash differs")
		return
	}
	fmt.Printf("schedule persisted to %s (%d bytes) and reloaded, hash intact ✓\n", path, len(data))

	if err := ladder(nil, loaded, false); err != nil {
		fmt.Println("UNEXPECTED: faithful replay diverged:", err)
		return
	}
	fmt.Println("faithful re-run replays the persisted reference cleanly ✓")

	err = ladder(nil, loaded, true)
	if err == nil {
		fmt.Println("UNEXPECTED: perturbed run matched the reference")
		return
	}
	fmt.Println("perturbed re-run caught by the replay guard:")
	fmt.Println(detlock.FormatFailure(err))
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
