// Radiosity: the compiler pipeline end to end on the paper's hardest
// workload — a high-lock-frequency task queue.
//
// The program below is written in the textual IR. It is instrumented with
// the DetLock pass at several optimization levels and executed on the
// deterministic multicore simulator, printing the overhead split the way
// the paper's Figure 14 does, plus the list of functions Optimization 1
// clocked and a determinism check.
//
//	go run ./examples/radiosity
package main

import (
	"fmt"
	"os"

	detlock "repro"
)

const program = `
module mini_radiosity
locks 1
barriers 1
global taskq 8
global patches 1024

; The compute kernel: a loop-free function with balanced branches.
; Optimization 1 will clock it and charge its mean at the call site.
func form_factor(r0) regs 4 {
entry:
  r1 = mul r0, 2654435761
  r2 = and r1, 1
  br r2, bright, dark
bright:
  r3 = mul r1, 3
  r3 = add r3, 17
  r3 = add r3, r0
  r3 = add r3, 5
  ret r3
dark:
  r3 = xor r1, 255
  r3 = add r3, 11
  r3 = sub r3, r0
  r3 = add r3, 7
  ret r3
}

; Each worker pops task indices from the shared queue and integrates the
; kernel result into its patch row.
func main() regs 10 {
entry:
  r0 = tid
  r9 = const 0
  jmp pop
pop:
  lock 0
  r1 = load taskq[0]
  r2 = add r1, 1
  store taskq[0], r2
  unlock 0
  r3 = lt r1, 400
  br r3, work, done
work:
  r4 = call form_factor(r1)
  r5 = and r1, 1023
  r6 = load patches[r5]
  r6 = add r6, r4
  store patches[r5], r6
  r9 = add r9, r4
  jmp pop
done:
  barrier 0
  print r9
  ret r9
}
`

func main() {
	m, err := detlock.ParseProgram(program)
	if err != nil {
		fail(err)
	}

	baseline, err := detlock.Simulate(m, detlock.SimConfig{Threads: 4})
	if err != nil {
		fail(err)
	}
	fmt.Printf("baseline (plain locks, no clocks): %d cycles\n\n", baseline.Cycles)

	for _, cfg := range []struct {
		name string
		opt  detlock.Options
	}{
		{"no optimization", detlock.NoOptimizations()},
		{"all optimizations", detlock.AllOptimizations()},
	} {
		opt := cfg.opt
		clocks, err := detlock.Simulate(m, detlock.SimConfig{Threads: 4, Opt: &opt})
		if err != nil {
			fail(err)
		}
		det, err := detlock.Simulate(m, detlock.SimConfig{Threads: 4, Opt: &opt, Deterministic: true})
		if err != nil {
			fail(err)
		}
		pct := func(c int64) float64 {
			return (float64(c)/float64(baseline.Cycles) - 1) * 100
		}
		fmt.Printf("%s:\n", cfg.name)
		fmt.Printf("  clock updates executed: %d\n", clocks.ClockUpdates)
		if len(clocks.Clockable) > 0 {
			fmt.Printf("  clocked functions: %v\n", clocks.Clockable)
		}
		fmt.Printf("  clock insertion overhead:      %5.1f%%\n", pct(clocks.Cycles))
		fmt.Printf("  + deterministic execution:     %5.1f%%\n\n", pct(det.Cycles))
	}

	// Weak determinism: the lock schedule is identical across runs.
	opt := detlock.AllOptimizations()
	sched, err := detlock.CheckDeterminism(m, detlock.SimConfig{Threads: 4, Opt: &opt}, 5)
	if err != nil {
		fail(err)
	}
	fmt.Printf("determinism verified: 5 runs, schedule hash %016x (%d acquisitions)\n",
		sched.Hash(), sched.Len())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "radiosity example:", err)
	os.Exit(1)
}
