package detlock

import (
	"context"

	"repro/internal/workload"
)

// Workload layer: the seeded traffic plane for driving services and clusters.
// A partitioned RNG feeds arrival-process generators (open-loop Poisson,
// bursty MMPP, diurnal, closed-loop with think time, trace replay) and a
// job-mix synthesizer over the generator's sync idioms; a driver pushes the
// resulting stream through a single service or a LoopNet cluster and folds
// the outcomes into a deterministic core fingerprint. Two runs with the same
// seed and config produce byte-identical deterministic columns regardless of
// topology, parallelism, or transport faults. cmd/detload sweeps the full
// scenario matrix. See DESIGN.md §12.

// WorkloadRNG hands out independent deterministic streams per subsystem
// class, so drawing from one class never perturbs another.
type WorkloadRNG = workload.PartitionedRNG

// WorkloadArrival is one event of a traffic timeline.
type WorkloadArrival = workload.Arrival

// WorkloadArrivalConfig parameterizes a timeline (shape, rate, burst/diurnal
// structure, closed-loop clients).
type WorkloadArrivalConfig = workload.ArrivalConfig

// WorkloadShape names one arrival process (poisson, bursty, diurnal, closed,
// trace).
type WorkloadShape = workload.Shape

// WorkloadMixSpec describes a job mix: weights over the generic generator
// and the sync-idiom families.
type WorkloadMixSpec = workload.MixSpec

// WorkloadRunConfig parameterizes one driver run (seed, arrival, mix,
// topology, nemesis).
type WorkloadRunConfig = workload.RunConfig

// WorkloadOutcome is a run's result: loss accounting plus the deterministic
// core fingerprint and the wall-clock annex.
type WorkloadOutcome = workload.Outcome

// WorkloadScenario is one cell of the scenario matrix.
type WorkloadScenario = workload.Scenario

// WorkloadMatrixConfig parameterizes a matrix sweep.
type WorkloadMatrixConfig = workload.MatrixConfig

// NewWorkloadRNG returns a partitioned RNG rooted at seed.
func NewWorkloadRNG(seed int64) *WorkloadRNG { return workload.NewPartitionedRNG(seed) }

// WorkloadTimeline generates the deterministic arrival sequence for cfg.
func WorkloadTimeline(rng *WorkloadRNG, cfg WorkloadArrivalConfig) ([]WorkloadArrival, error) {
	return workload.Timeline(rng, cfg)
}

// RunWorkload drives one seeded workload through a service or cluster.
func RunWorkload(ctx context.Context, cfg WorkloadRunConfig) (*WorkloadOutcome, error) {
	return workload.Run(ctx, cfg)
}

// RunWorkloadMatrix sweeps a scenario matrix on a worker pool; results come
// back in scenario order so rendered tables are parallelism-independent.
func RunWorkloadMatrix(ctx context.Context, cfg WorkloadMatrixConfig) []workload.ScenarioResult {
	return workload.RunMatrix(ctx, cfg)
}

// WorkloadMixes returns the standard mix suite (generic, one per idiom,
// blend).
func WorkloadMixes() []WorkloadMixSpec { return workload.DefaultMixes() }
