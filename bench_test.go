// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each bench runs the corresponding experiment once per iteration and
// reports the paper's headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the entire evaluation:
//
//	BenchmarkTable1/<benchmark>  — Table I columns (clock & det overhead %)
//	BenchmarkTable2/<benchmark>  — Table II (DetLock vs tuned Kendo)
//	BenchmarkFig14Average        — Figure 14 (average bars)
//	BenchmarkFig15               — Figure 15 (ahead-of-time ablation)
//	BenchmarkKendoChunk/<chunk>  — §V-C chunk tuning ablation
//	BenchmarkDeterminism         — schedule stability across runs
//	BenchmarkDetRuntime          — the goroutine runtime's lock throughput
package detlock_test

import (
	"fmt"
	"testing"

	detlock "repro"
	"repro/internal/harness"
	"repro/internal/splash"
	"repro/internal/trace"
)

// BenchmarkTable1 regenerates one Table I column per sub-benchmark:
// baseline, clocks-only and deterministic overhead under no-opt and all-opt.
func BenchmarkTable1(b *testing.B) {
	for _, name := range splash.Names() {
		b.Run(name, func(b *testing.B) {
			r := harness.NewRunner()
			var col *harness.BenchTableI
			for i := 0; i < b.N; i++ {
				var err error
				col, err = r.TableIFor(name)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(col.ClocksPct["none"], "clkNone%")
			b.ReportMetric(col.ClocksPct["all"], "clkAll%")
			b.ReportMetric(col.DetPct["none"], "detNone%")
			b.ReportMetric(col.DetPct["all"], "detAll%")
			b.ReportMetric(float64(col.Clockable), "clockableFns")
			b.ReportMetric(col.LocksPerSec, "locks/s")
		})
	}
}

// BenchmarkTable2 regenerates the DetLock-vs-Kendo comparison per benchmark.
func BenchmarkTable2(b *testing.B) {
	for _, name := range splash.Names() {
		b.Run(name, func(b *testing.B) {
			r := harness.NewRunner()
			var row *harness.BenchTableII
			for i := 0; i < b.N; i++ {
				var err error
				row, err = r.TableIIFor(name)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.DetLockPct, "detlock%")
			b.ReportMetric(row.KendoPct, "kendo%")
			b.ReportMetric(float64(row.KendoChunk), "kendoChunk")
		})
	}
}

// BenchmarkFig14Average regenerates Figure 14's headline averages (the
// paper's 20%→8% clock and 28%→15% deterministic overhead).
func BenchmarkFig14Average(b *testing.B) {
	r := harness.NewRunner()
	var rep *harness.TableIReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.TableI()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.AverageClocksPct("none"), "avgClkNone%")
	b.ReportMetric(rep.AverageClocksPct("all"), "avgClkAll%")
	b.ReportMetric(rep.AverageDetPct("none"), "avgDetNone%")
	b.ReportMetric(rep.AverageDetPct("all"), "avgDetAll%")
}

// BenchmarkFig15 regenerates the ahead-of-time clocking ablation on
// Radiosity (no-opt vs O1-at-end vs O1-at-start).
func BenchmarkFig15(b *testing.B) {
	r := harness.NewRunner()
	var rep *harness.Fig15Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.Fig15()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.DetPct[0], "noOpt%")
	b.ReportMetric(rep.DetPct[1], "o1End%")
	b.ReportMetric(rep.DetPct[2], "o1Start%")
}

// BenchmarkKendoChunk sweeps the Kendo chunk size on Radiosity — the manual
// tuning the paper's authors describe in §V-C.
func BenchmarkKendoChunk(b *testing.B) {
	for _, chunk := range []int64{100, 1000, 16000} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			r := harness.NewRunner()
			var pct float64
			for i := 0; i < b.N; i++ {
				bench, err := splash.New("radiosity", r.Threads)
				if err != nil {
					b.Fatal(err)
				}
				base, err := r.Run(bench, harness.PresetByKey("none"), harness.ModeBaseline, 0)
				if err != nil {
					b.Fatal(err)
				}
				kr, err := r.Run(bench, harness.PresetByKey("none"), harness.ModeKendo, chunk)
				if err != nil {
					b.Fatal(err)
				}
				pct = harness.OverheadPct(kr, base)
			}
			b.ReportMetric(pct, "kendo%")
		})
	}
}

// BenchmarkDeterminism measures the cost of a deterministic simulation and
// verifies schedule stability on every iteration (the headline property).
func BenchmarkDeterminism(b *testing.B) {
	m, err := detlock.ParseProgram(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	opt := detlock.AllOptimizations()
	cfg := detlock.SimConfig{Threads: 4, Opt: &opt, Deterministic: true, RecordSchedule: true}
	ref, err := detlock.Simulate(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := detlock.Simulate(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if d := trace.Compare(ref.Schedule, res.Schedule); d.Diverged {
			b.Fatalf("schedule diverged: %s", d)
		}
	}
	b.ReportMetric(float64(ref.Schedule.Len()), "acquisitions")
}

// BenchmarkDetRuntime measures deterministic lock throughput on real
// goroutines (the runtime of package detlock).
func BenchmarkDetRuntime(b *testing.B) {
	for _, threads := range []int{2, 4} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := detlock.New(threads)
				mu := rt.NewMutex()
				rt.Run(func(t *detlock.Thread) {
					for k := 0; k < 200; k++ {
						t.Tick(int64(7 + t.ID()))
						mu.Lock(t)
						mu.Unlock(t)
					}
				})
			}
			b.ReportMetric(float64(threads*200)/float64(b.Elapsed().Seconds())/float64(b.N), "locks/s")
		})
	}
}

// BenchmarkDetRuntimeWatchdog is the robustness-layer bench guard: with the
// watchdog disabled (the default) lock throughput must stay within noise of
// the plain runtime — the monitor adds no hot-path state — and the "on" case
// bounds the cost of arming it.
func BenchmarkDetRuntimeWatchdog(b *testing.B) {
	const threads, iters = 4, 200
	run := func(b *testing.B, arm bool) {
		for i := 0; i < b.N; i++ {
			rt := detlock.New(threads)
			if arm {
				rt.EnableWatchdog(nil)
			}
			mu := rt.NewMutex()
			rt.Run(func(t *detlock.Thread) {
				for k := 0; k < iters; k++ {
					t.Tick(int64(7 + t.ID()))
					mu.Lock(t)
					mu.Unlock(t)
				}
			})
		}
		b.ReportMetric(float64(threads*iters)/float64(b.Elapsed().Seconds())/float64(b.N), "locks/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

const benchProgram = `
module bench
locks 2
global work 256

func kernel(r0) regs 3 {
entry:
  r1 = and r0, 1
  br r1, a, c
a:
  r2 = mul r0, 3
  r2 = add r2, 1
  ret r2
c:
  r2 = mul r0, 3
  r2 = add r2, 2
  ret r2
}

func main() regs 8 {
entry:
  r0 = const 0
  jmp loop
loop:
  r1 = lt r0, 150
  br r1, body, done
body:
  r2 = call kernel(r0)
  r3 = and r2, 1
  lock r3
  r4 = and r2, 255
  r5 = load work[r4]
  r5 = add r5, r2
  store work[r4], r5
  unlock r3
  r0 = add r0, 1
  jmp loop
done:
  ret r0
}
`

// BenchmarkRaceDetectorOff is the race-layer bench guard, in the shape of
// BenchmarkDetRuntimeWatchdog: with detection off (the default) the simulator
// hot loop must match the pre-detector numbers — the disabled path is a
// single nil check on each load/store and adds no allocations — and the "on"
// case bounds the full vector-clock cost. Compare off/on with -benchmem:
// allocs/op of "off" is the guarded number.
func BenchmarkRaceDetectorOff(b *testing.B) {
	m, err := detlock.ParseProgram(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	opt := detlock.AllOptimizations()
	run := func(b *testing.B, race *detlock.RaceConfig) {
		b.ReportAllocs()
		cfg := detlock.SimConfig{Threads: 4, Opt: &opt, Deterministic: true, Race: race}
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := detlock.Simulate(m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Races) != 0 {
				b.Fatalf("bench program raced: %v", res.Races[0])
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, &detlock.RaceConfig{Policy: detlock.RaceReport}) })
}
