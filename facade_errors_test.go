package detlock_test

import (
	"context"
	"errors"
	"testing"

	detlock "repro"
)

// The facade's error-path contract: malformed programs, conflicting
// configurations, and bad counts come back as typed errors — never a panic,
// never a mid-pipeline failure with the config error buried inside.

func mustNotPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", name, r)
		}
	}()
	fn()
}

func TestFacadeMalformedIR(t *testing.T) {
	cases := []string{
		"",
		"not a module",
		"module m\nfunc main() regs 2 {\nentry:\n  jmp nowhere\n}",
		"module m\nfunc main() regs 3 {\nentry:\n  r1 = call missing(r0)\n  ret r1\n}", // undefined callee
	}
	for _, src := range cases {
		mustNotPanic(t, "ParseProgram", func() {
			if m, err := detlock.ParseProgram(src); err == nil && m != nil {
				// Some inputs parse but fail verification at simulate time;
				// that must surface as an error too.
				if _, simErr := detlock.Simulate(m, detlock.SimConfig{Deterministic: true}); simErr == nil {
					t.Errorf("malformed program %q fully accepted", src)
				}
			}
		})
	}
}

func TestFacadeConflictingSimConfig(t *testing.T) {
	m, err := detlock.ParseProgram("module m\nfunc main() regs 2 {\nentry:\n  r0 = tid\n  ret r0\n}")
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}

	// Race detection on the FCFS baseline is a configuration misuse.
	_, err = detlock.Simulate(m, detlock.SimConfig{
		Deterministic: false,
		Race:          &detlock.RaceConfig{Policy: detlock.RaceFailFast},
	})
	if !errors.Is(err, detlock.ErrRaceBackend) {
		t.Fatalf("Race+FCFS: err = %v, want ErrRaceBackend", err)
	}
	var me *detlock.MisuseError
	if !errors.As(err, &me) || me.ThreadID != -1 {
		t.Fatalf("Race+FCFS: want configuration-level *MisuseError, got %v", err)
	}
}

func TestFacadeThreadCounts(t *testing.T) {
	m, err := detlock.ParseProgram("module m\nfunc main() regs 2 {\nentry:\n  r0 = tid\n  ret r0\n}")
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}

	// Zero threads defaults to 4 — documented, and must not panic.
	mustNotPanic(t, "Simulate(Threads=0)", func() {
		res, err := detlock.Simulate(m, detlock.SimConfig{Deterministic: true})
		if err != nil {
			t.Fatalf("Threads=0: %v", err)
		}
		if len(res.Output) != 4 {
			t.Fatalf("Threads=0 ran %d threads, want default 4", len(res.Output))
		}
	})

	// Negative threads is a typed configuration error.
	mustNotPanic(t, "Simulate(Threads=-3)", func() {
		_, err := detlock.Simulate(m, detlock.SimConfig{Threads: -3, Deterministic: true})
		if !errors.Is(err, detlock.ErrBadConfig) {
			t.Fatalf("Threads=-3: err = %v, want ErrBadConfig", err)
		}
		var me *detlock.MisuseError
		if !errors.As(err, &me) {
			t.Fatalf("Threads=-3: want *MisuseError, got %v", err)
		}
	})

	// Nil module is a typed error, not a nil dereference.
	mustNotPanic(t, "Simulate(nil)", func() {
		_, err := detlock.Simulate(nil, detlock.SimConfig{Deterministic: true})
		if !errors.Is(err, detlock.ErrBadConfig) {
			t.Fatalf("nil module: err = %v, want ErrBadConfig", err)
		}
	})

	// CheckDeterminism with a non-positive run count.
	mustNotPanic(t, "CheckDeterminism(n=0)", func() {
		_, err := detlock.CheckDeterminism(m, detlock.SimConfig{}, 0)
		if !errors.Is(err, detlock.ErrBadConfig) {
			t.Fatalf("n=0: err = %v, want ErrBadConfig", err)
		}
	})
}

// TestFacadeServiceExports exercises the re-exported service layer through
// the facade names only.
func TestFacadeServiceExports(t *testing.T) {
	svc := detlock.NewService(detlock.ServiceConfig{Workers: 1})
	defer svc.Close(context.Background())

	_, err := svc.Do(context.Background(), detlock.JobRequest{})
	if !errors.Is(err, detlock.ErrBadConfig) {
		t.Fatalf("empty request: err = %v, want ErrBadConfig", err)
	}
	if kind := detlock.ClassifyJobError(err); kind != "misuse" {
		t.Fatalf("ClassifyJobError = %q, want misuse", kind)
	}
	if _, err := svc.Lookup("nope"); !errors.Is(err, detlock.ErrUnknownJob) {
		t.Fatalf("Lookup: err = %v, want ErrUnknownJob", err)
	}

	res, err := svc.Do(context.Background(), detlock.JobRequest{
		Source:    "module m\nlocks 1\nfunc main() regs 2 {\nentry:\n  lock 0\n  unlock 0\n  ret r0\n}",
		Artifacts: detlock.JobArtifacts{Schedule: true},
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Schedule == nil || res.Schedule.Len() != res.ScheduleLen {
		t.Fatal("schedule artifact missing through the facade")
	}
	if svc.Snapshot().JobsCompleted != 1 {
		t.Fatalf("stats snapshot: completed = %d, want 1", svc.Snapshot().JobsCompleted)
	}
}
