package detlock

import (
	"repro/internal/service"
)

// Service layer: a long-lived deterministic-execution service embedding the
// compiler pipeline and simulator behind a job-submission API with a worker
// pool and content-addressed caches. Because the pipeline is weakly
// deterministic, identical (program, config) submissions provably produce
// identical results — the service caches on that invariant and polices it
// with a sampled re-execution self-check. cmd/detserve is the HTTP front
// end; these re-exports let Go programs embed the service directly:
//
//	svc := detlock.NewService(detlock.ServiceConfig{SelfCheckRate: 0.1})
//	defer svc.Close(context.Background())
//	res, err := svc.Do(ctx, detlock.JobRequest{Source: src})

// Service is the deterministic-execution service (worker pool, bounded
// queue, instrumentation and result caches).
type Service = service.Service

// ServiceConfig parameterizes NewService.
type ServiceConfig = service.Config

// JobRequest describes one job: program source, instrumentation and
// simulation configuration, and the artifacts to return.
type JobRequest = service.Request

// JobArtifacts selects a job's optional result payloads.
type JobArtifacts = service.Artifacts

// JobResult is a completed job's payload.
type JobResult = service.Result

// JobView is the externally visible status/result snapshot of a job.
type JobView = service.JobView

// ServiceStats is the service's counter snapshot (cache hits, queue depth,
// per-stage latency, self-check divergences).
type ServiceStats = service.StatsSnapshot

// NewService starts a service; its worker pool begins draining immediately.
// Shut down with Service.Close.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Service-level rejection sentinels for errors.Is.
var (
	// ErrQueueFull: the bounded job queue is at capacity.
	ErrQueueFull = service.ErrQueueFull
	// ErrServiceClosed: the service is draining or closed.
	ErrServiceClosed = service.ErrClosed
	// ErrUnknownJob: no job with the requested id.
	ErrUnknownJob = service.ErrUnknownJob
)

// ClassifyJobError maps a job error onto its report family ("deadlock",
// "race", "divergence", "misuse", "queue_full", ...), for monitoring and
// HTTP status mapping.
func ClassifyJobError(err error) string { return service.Classify(err) }
