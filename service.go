package detlock

import (
	"repro/internal/service"
)

// Service layer: a long-lived deterministic-execution service embedding the
// compiler pipeline and simulator behind a job-submission API with a worker
// pool and content-addressed caches. Because the pipeline is weakly
// deterministic, identical (program, config) submissions provably produce
// identical results — the service caches on that invariant and polices it
// with a sampled re-execution self-check. cmd/detserve is the HTTP front
// end; these re-exports let Go programs embed the service directly:
//
//	svc := detlock.NewService(detlock.ServiceConfig{SelfCheckRate: 0.1})
//	defer svc.Close(context.Background())
//	res, err := svc.Do(ctx, detlock.JobRequest{Source: src})

// Service is the deterministic-execution service (worker pool, bounded
// queue, instrumentation and result caches).
type Service = service.Service

// ServiceConfig parameterizes NewService.
type ServiceConfig = service.Config

// JobRequest describes one job: program source, instrumentation and
// simulation configuration, and the artifacts to return.
type JobRequest = service.Request

// JobArtifacts selects a job's optional result payloads.
type JobArtifacts = service.Artifacts

// JobResult is a completed job's payload.
type JobResult = service.Result

// JobView is the externally visible status/result snapshot of a job.
type JobView = service.JobView

// ServiceStats is the service's counter snapshot (cache hits, queue depth,
// per-stage latency, self-check divergences, journal/breaker/retry state).
type ServiceStats = service.StatsSnapshot

// ServiceFaults arms the service chaos harness (worker panics, journal write
// errors) for fault-tolerance testing; production configs leave it nil.
type ServiceFaults = service.FaultConfig

// JobFailureRecord is one entry of the bounded recent-failures ring in
// ServiceStats.
type JobFailureRecord = service.FailureRecord

// NewService starts a service; its worker pool begins draining immediately.
// Shut down with Service.Close. A configured journal that fails to open does
// not stop the service — it starts degraded; use OpenService to surface the
// error instead.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenService starts a service like NewService but returns journal
// open/recovery errors, for callers that should refuse to run without the
// durability they asked for. With ServiceConfig.JournalPath set, accepted
// jobs are fsynced before Submit returns and survive crashes: restart
// re-executes incomplete jobs (weak determinism guarantees identical
// results) and serves completed ones from the log, cross-checking them by
// background re-execution.
func OpenService(cfg ServiceConfig) (*Service, error) { return service.Open(cfg) }

// Service-level rejection sentinels for errors.Is.
var (
	// ErrQueueFull: the bounded job queue is at capacity.
	ErrQueueFull = service.ErrQueueFull
	// ErrServiceClosed: the service is draining or closed.
	ErrServiceClosed = service.ErrClosed
	// ErrUnknownJob: no job with the requested id.
	ErrUnknownJob = service.ErrUnknownJob
	// ErrServiceOverloaded: in-flight request bytes exceed the admission
	// bound; retry after the queue drains.
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrCircuitOpen: repeated determinism divergences opened the admission
	// circuit breaker; the service is refusing work while its soundness is
	// in doubt.
	ErrCircuitOpen = service.ErrCircuitOpen
)

// ClassifyJobError maps a job error onto its report family ("deadlock",
// "race", "divergence", "misuse", "queue_full", "timeout", "overloaded",
// ...), for monitoring and HTTP status mapping.
func ClassifyJobError(err error) string { return service.Classify(err) }

// JobRetryAfter suggests, in seconds, when a rejected submission is worth
// retrying (the Retry-After header on detserve's 429/503 responses); zero
// means the error is not a backpressure rejection.
func JobRetryAfter(err error) int { return service.RetryAfter(err) }
