// Package detlock is the public API of the DetLock reproduction: portable
// deterministic execution for shared-memory multithreaded programs, after
// "DetLock: Portable and Efficient Deterministic Execution for Shared Memory
// Multicore Systems" (Mushtaq, Al-Ars, Bertels — SC 2012).
//
// Two ways to use it:
//
// # Deterministic runtime for Go code
//
// The runtime gives real goroutines Kendo-style weak determinism: for a
// race-free program with a fixed input, every run acquires every lock in
// the same global order, no matter how the Go scheduler interleaves the
// goroutines. Logical clocks stand in for the paper's compiler-inserted
// updates via explicit Tick calls:
//
//	rt := detlock.New(4)
//	mu := rt.NewMutex()
//	rt.Run(func(t *detlock.Thread) {
//	    t.Tick(workUnits)  // account for compute between sync points
//	    mu.Lock(t)
//	    // ... deterministic critical section order ...
//	    mu.Unlock(t)
//	})
//
// # Compiler pipeline and simulator for IR programs
//
// Programs written in (or compiled to) the textual IR can be instrumented
// with the paper's clock-insertion pass — including all four overhead
// optimizations — and executed on a deterministic multicore simulator that
// reports cycle-accurate overheads:
//
//	m, _ := detlock.ParseProgram(src)
//	res, _ := detlock.Simulate(m, detlock.SimConfig{
//	    Threads: 4,
//	    Opt:     detlock.AllOptimizations(),
//	})
//
// See cmd/detbench for the full reproduction of the paper's evaluation.
package detlock

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/det"
	"repro/internal/diag"
	"repro/internal/estimates"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Runtime coordinates deterministic threads over real goroutines.
type Runtime = det.Runtime

// Thread is a deterministic thread handle; all synchronization methods take
// the owning thread.
type Thread = det.Thread

// Mutex is a deterministic mutual-exclusion lock.
type Mutex = det.Mutex

// Barrier is a deterministic cyclic barrier.
type Barrier = det.Barrier

// Cond is a deterministic condition variable (the paper's future work,
// implemented here as an extension).
type Cond = det.Cond

// Allocator is the deterministic allocator shim (the paper's malloc
// replacement, §III-B).
type Allocator = det.Allocator

// New creates a deterministic runtime with n threads.
func New(n int) *Runtime { return det.New(n) }

// Failure modes & diagnostics.
//
// The runtime never hangs: every stuck state terminates with a structured
// report. Runtime.Run returns nil on a clean run, or a typed error:
//
//   - *DeadlockError when every live thread is blocked — it names the exact
//     wait-for cycle and carries a per-thread snapshot (id, frozen clock,
//     blocked-on resource, last acquisition). Because blocking events are
//     turn-gated, the report is identical on every run.
//   - *WatchdogError when the optional progress watchdog (EnableWatchdog on
//     the runtime; off by default, zero overhead when disabled) sees no
//     clock advance within its bound — the livelocks a wait-for graph
//     cannot see.
//   - *ThreadPanicError when user code panics: the thread is torn out of
//     the turn predicate deterministically and survivors keep running (or
//     reach the deadlock detector, if the dead thread held locks they
//     need). API misuse (unlock of an unheld mutex, cross-runtime object
//     use, self-join) panics with a *MisuseError, classified by the Err*
//     sentinels.
//
// Classify with errors.Is (ErrDeadlock, ErrStalled, ...), extract with
// errors.As, and render with FormatFailure. Simulate returns the same
// *DeadlockError for stuck IR programs.

// DeadlockError reports that every live thread is blocked, with the wait-for
// cycle and a deterministic per-thread snapshot.
type DeadlockError = diag.DeadlockError

// WatchdogError reports a livelock detected by the progress watchdog.
type WatchdogError = diag.WatchdogError

// ThreadPanicError reports a user panic contained by the runtime.
type ThreadPanicError = diag.ThreadPanicError

// MisuseError reports an API contract violation with thread context.
type MisuseError = diag.MisuseError

// RaceError reports a data race found by the simulator's deterministic
// detector: the conflicting access pair with threads, vector clocks, held
// locksets and the flat address — identical on every run, including under
// physical-timing perturbation.
type RaceError = diag.RaceError

// RaceAccess is one side of a reported race.
type RaceAccess = diag.RaceAccess

// DivergenceError reports the first synchronization event at which a run's
// schedule differs from the reference — trace.CheckRuns' typed result and
// the runtime replay guard's (Runtime.SetReplayGuard) failure report.
type DivergenceError = diag.DivergenceError

// DivergenceEvent is one synchronization event in a divergence report.
type DivergenceEvent = diag.DivergenceEvent

// TimeoutError reports a job canceled before completion — by its deadline,
// by a disconnected synchronous client, or by service shutdown.
type TimeoutError = diag.TimeoutError

// RetryError reports a job whose transient failures persisted across every
// retry attempt; Last is the final attempt's cause.
type RetryError = diag.RetryError

// RaceConfig enables the simulator's deterministic race detector.
type RaceConfig = interp.RaceConfig

// RacePolicy selects fail-fast vs report-and-continue detection.
type RacePolicy = interp.RacePolicy

// Race policies.
const (
	// RaceFailFast aborts the simulation at the first race; Simulate
	// returns the *RaceError.
	RaceFailFast = interp.RaceFailFast
	// RaceReport collects races (deterministically capped) and lets the run
	// finish; read them from SimResult.Races.
	RaceReport = interp.RaceReport
)

// ThreadSnapshot is one thread's state inside a failure report.
type ThreadSnapshot = diag.ThreadSnapshot

// WaitEdge is one wait-for edge (thread → resource → holder).
type WaitEdge = diag.WaitEdge

// WatchdogConfig tunes Runtime.EnableWatchdog.
type WatchdogConfig = det.WatchdogConfig

// Failure classification sentinels for errors.Is.
var (
	ErrDeadlock       = diag.ErrDeadlock
	ErrStalled        = diag.ErrStalled
	ErrCrossRuntime   = diag.ErrCrossRuntime
	ErrNotHeld        = diag.ErrNotHeld
	ErrSelfJoin       = diag.ErrSelfJoin
	ErrBadJoin        = diag.ErrBadJoin
	ErrRace           = diag.ErrRace
	ErrDivergence     = diag.ErrDivergence
	ErrDetectorMidRun = diag.ErrDetectorMidRun
	ErrRaceBackend    = diag.ErrRaceBackend
	ErrBadConfig      = diag.ErrBadConfig
	// ErrDeadline: a job was canceled before completion (deadline, client
	// disconnect, or shutdown); the typed report is *TimeoutError.
	ErrDeadline = diag.ErrDeadline
	// ErrRetriesExhausted: a transient failure persisted across the job's
	// whole retry budget; the typed report is *RetryError.
	ErrRetriesExhausted = diag.ErrRetriesExhausted
)

// FormatFailure renders a runtime failure error (deadlock, stall, panic,
// misuse) as a full human-readable report; other errors render as Error().
func FormatFailure(err error) string { return trace.FormatFailure(err) }

// Module is a program in the reproduction's compiler IR.
type Module = ir.Module

// Options selects the clock-insertion optimizations (paper §IV).
type Options = core.Options

// InstrumentResult reports what the pass did (clockable functions etc.).
type InstrumentResult = core.Result

// Schedule is a recorded synchronization order; identical schedules across
// runs are the definition of weak determinism.
type Schedule = trace.Schedule

// NewSchedule returns an empty schedule, for Runtime.RecordSchedule and
// Runtime.SetReplayGuard.
func NewSchedule() *Schedule { return trace.New() }

// AllOptimizations returns the paper's "With All Optimizations" setting.
func AllOptimizations() Options { return core.OptAll }

// NoOptimizations returns the bare clock-insertion setting.
func NoOptimizations() Options { return core.OptNone }

// ParseProgram parses the textual IR format (see internal/ir and the files
// under examples/programs).
func ParseProgram(src string) (*Module, error) { return ir.Parse(src) }

// FormatProgram renders a module back to the textual format.
func FormatProgram(m *Module) string { return m.String() }

// Instrument runs the DetLock pass over m in place, inserting logical-clock
// updates. roots names the thread entry functions (never made clockable).
func Instrument(m *Module, opt Options, roots ...string) (*InstrumentResult, error) {
	if len(roots) == 0 {
		roots = []string{"main"}
	}
	opt.Roots = roots
	return core.Instrument(m, nil, nil, opt)
}

// SimConfig configures a deterministic simulation of an IR program.
type SimConfig struct {
	// Threads is the simulated core count. Zero defaults to 4; a negative
	// count is a typed *MisuseError (ErrBadConfig).
	Threads int
	// Entry is the SPMD entry function (default "main").
	Entry string
	// Opt selects the instrumentation; nil Opt with Deterministic=false
	// simulates the uninstrumented baseline.
	Opt *Options
	// Deterministic enables the deterministic lock policy (otherwise plain
	// FCFS locks, the baseline).
	Deterministic bool
	// RecordSchedule captures the lock-acquisition schedule.
	RecordSchedule bool
	// Race enables the deterministic data-race detector (vector clocks with
	// a lockset pre-filter over every simulated load and store). Requires
	// Deterministic — the detector guards the weak-determinism contract, and
	// its reports are only reproducible under the deterministic policy;
	// combining it with the FCFS baseline is a typed *MisuseError
	// (ErrRaceBackend). Nil disables detection at zero cost.
	Race *RaceConfig
	// PerturbSeed, when nonzero, perturbs physical instruction timing with
	// seeded pseudo-random extra cycles (the fault-injection harness for
	// timing). Deterministic schedules — and race reports — are invariant
	// under it; baseline FCFS schedules generally are not. Zero disables.
	PerturbSeed int64
}

// SimResult reports a simulation outcome.
type SimResult struct {
	// Cycles is the simulated makespan.
	Cycles int64
	// WaitCycles is the total time threads spent blocked on synchronization.
	WaitCycles int64
	// Acquisitions counts lock acquisitions.
	Acquisitions int64
	// ClockUpdates counts executed logical-clock updates.
	ClockUpdates int64
	// Clockable lists the functions Optimization 1 clocked.
	Clockable []string
	// Schedule is the synchronization order (when recorded).
	Schedule *Schedule
	// Output is each thread's deterministic print log.
	Output [][]int64
	// Races lists the data races found when SimConfig.Race ran with
	// RaceReport; deterministically ordered and capped at
	// RaceConfig.MaxReports.
	Races []*RaceError
	// RacesSuppressed counts races dropped beyond the report cap.
	RacesSuppressed int
}

// Simulate instruments (optionally) and runs m on the deterministic
// multicore simulator. The input module is not modified. Configuration
// misuse (nil module, negative thread count, Race without Deterministic) is
// a typed *MisuseError, never a panic.
func Simulate(m *Module, cfg SimConfig) (*SimResult, error) {
	if m == nil {
		return nil, &diag.MisuseError{
			Op: "detlock.Simulate", ThreadID: -1, Kind: diag.ErrBadConfig,
			Detail: "nil module",
		}
	}
	if cfg.Threads < 0 {
		return nil, &diag.MisuseError{
			Op: "detlock.Simulate", ThreadID: -1, Kind: diag.ErrBadConfig,
			Detail: fmt.Sprintf("negative thread count %d", cfg.Threads),
		}
	}
	if cfg.Threads == 0 {
		cfg.Threads = 4
	}
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.Race != nil && !cfg.Deterministic {
		return nil, &diag.MisuseError{
			Op:       "detlock.Simulate",
			ThreadID: -1,
			Kind:     diag.ErrRaceBackend,
			Detail:   "SimConfig.Race requires SimConfig.Deterministic: race reports are only reproducible under the deterministic policy",
		}
	}
	clone := m.Clone()
	out := &SimResult{}
	if cfg.Opt != nil {
		opt := *cfg.Opt
		opt.Roots = []string{cfg.Entry}
		res, err := core.Instrument(clone, nil, nil, opt)
		if err != nil {
			return nil, fmt.Errorf("detlock: %w", err)
		}
		out.Clockable = res.ClockableNames()
	}
	mach, threads, err := interp.NewMachine(interp.Config{
		Module:     clone,
		Threads:    cfg.Threads,
		Entry:      cfg.Entry,
		Estimates:  estimates.DefaultTable(),
		Race:       cfg.Race,
		JitterSeed: cfg.PerturbSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("detlock: %w", err)
	}
	policy := sim.PolicyFCFS
	if cfg.Deterministic {
		policy = sim.PolicyDet
	}
	eng := sim.New(sim.Config{
		Policy:      policy,
		NumLocks:    clone.NumLocks,
		NumBarriers: clone.NumBars,
		RecordTrace: cfg.RecordSchedule,
		Observer:    mach.Observer(),
	}, interp.Programs(threads))
	stats, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("detlock: %w", err)
	}
	out.Cycles = stats.Makespan
	out.WaitCycles = stats.WaitCycles
	out.Acquisitions = stats.Acquisitions
	out.ClockUpdates = mach.ClockUpdates
	if cfg.RecordSchedule {
		out.Schedule = trace.FromSim(stats.Trace)
	}
	out.Races = mach.Races()
	out.RacesSuppressed = mach.RacesSuppressed()
	for _, th := range threads {
		out.Output = append(out.Output, append([]int64(nil), th.Output...))
	}
	return out, nil
}

// CheckDeterminism runs the program n times under the deterministic policy
// and verifies the synchronization schedules are identical, returning the
// common schedule. n must be at least 1 (ErrBadConfig otherwise).
func CheckDeterminism(m *Module, cfg SimConfig, n int) (*Schedule, error) {
	if n < 1 {
		return nil, &diag.MisuseError{
			Op: "detlock.CheckDeterminism", ThreadID: -1, Kind: diag.ErrBadConfig,
			Detail: fmt.Sprintf("run count %d < 1", n),
		}
	}
	cfg.Deterministic = true
	cfg.RecordSchedule = true
	var runs []*Schedule
	for i := 0; i < n; i++ {
		res, err := Simulate(m, cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, res.Schedule)
	}
	if err := trace.CheckRuns(runs); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, nil
	}
	return runs[0], nil
}
